//! The in-hardware run-time locality classifier (Sections 2.2.1–2.2.5).
//!
//! One classifier instance is attached to every home-directory entry.  It
//! tracks, per core, a *replication mode* bit and a *home reuse* saturating
//! counter, and makes the replication decision for read and write requests:
//!
//! * a core starts as a **non-replica sharer**; its home-reuse counter is
//!   incremented on every access it makes at the home location;
//! * once the counter reaches the replication threshold **RT** the core is
//!   *promoted* to **replica sharer** and subsequent misses install a replica
//!   in its local LLC slice;
//! * when a replica is evicted or invalidated the replica-reuse counter it
//!   accumulated is reported back to the home, and the core is *demoted* if
//!   the observed reuse fell below RT (eviction: replica reuse alone;
//!   invalidation: replica + home reuse, the total reuse between conflicting
//!   writes);
//! * on a write, the home-reuse counters of all non-replica sharers other
//!   than the writer are reset (they did not show enough reuse to be
//!   promoted), while the writer's counter is incremented if it was the only
//!   sharer (migratory data) or set to one otherwise.
//!
//! Two storage organizations are provided (Figure 4 / Figure 5): the
//! **Complete** classifier tracks every core, and the **Limited_k**
//! classifier tracks at most `k` cores, replaces *inactive* entries first and
//! classifies untracked cores by a majority vote of the tracked modes.

use std::fmt;

use lad_common::types::CoreId;

use crate::counter::SaturatingCounter;

/// Whether a core is currently allowed to keep an LLC replica of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicationMode {
    /// The core's LLC slice may hold a replica of the line.
    Replica,
    /// The core must access the line at its home LLC slice.
    NonReplica,
}

impl ReplicationMode {
    /// `true` for [`ReplicationMode::Replica`].
    pub fn allows_replica(self) -> bool {
        matches!(self, ReplicationMode::Replica)
    }
}

impl fmt::Display for ReplicationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationMode::Replica => f.write_str("replica"),
            ReplicationMode::NonReplica => f.write_str("non-replica"),
        }
    }
}

/// Which classifier organization to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Track locality information for every core in the system (Figure 4).
    Complete,
    /// Track locality information for at most `k` cores and classify the
    /// rest by majority vote (Figure 5).  The paper picks `k = 3`.
    Limited(usize),
}

impl ClassifierKind {
    /// The paper's default: the Limited₃ classifier.
    pub fn paper_default() -> Self {
        ClassifierKind::Limited(3)
    }

    /// Number of tracked cores, or `None` for the complete classifier.
    pub fn capacity(self) -> Option<usize> {
        match self {
            ClassifierKind::Complete => None,
            ClassifierKind::Limited(k) => Some(k),
        }
    }
}

/// Locality state tracked for one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CoreEntry {
    core: CoreId,
    mode: ReplicationMode,
    home_reuse: SaturatingCounter,
    /// An *inactive* entry belongs to a core that is currently not using the
    /// line (its replica was evicted/invalidated, or it was a non-replica
    /// sharer invalidated by another core's write); inactive entries are the
    /// preferred replacement candidates in the limited classifier.
    active: bool,
}

impl CoreEntry {
    fn new(core: CoreId, mode: ReplicationMode, rt: u32) -> Self {
        CoreEntry {
            core,
            mode,
            home_reuse: SaturatingCounter::new(rt),
            active: true,
        }
    }
}

/// One tracked core's classifier state, as exposed by
/// [`LocalityClassifier::snapshot`] for checkers and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedCore {
    /// The tracked core.
    pub core: CoreId,
    /// Its current replication mode.
    pub mode: ReplicationMode,
    /// Its home-reuse counter value.
    pub home_reuse: u32,
    /// `true` while the core is actively using the line; inactive entries
    /// are the Limited_k replacement candidates.
    pub active: bool,
}

/// The per-cache-line locality classifier.
#[derive(Debug, Clone)]
pub struct LocalityClassifier {
    entries: Vec<CoreEntry>,
    /// `None` for the Complete classifier (track everyone), `Some(k)` for
    /// Limited_k.
    capacity: Option<usize>,
    rt: u32,
    /// Cumulative number of replica/non-replica mode transitions of tracked
    /// cores (promotions and demotions; classification *churn*).  Diagnostic
    /// only: excluded from equality, reset by [`LocalityClassifier::from_snapshot`].
    mode_flips: u64,
    /// High-water mark of [`LocalityClassifier::tracked_count`] — how much
    /// classifier-table capacity this line actually used.  Diagnostic only,
    /// like `mode_flips`.
    peak_tracked: usize,
}

/// Equality covers the *behavioral* state (tracked entries in order,
/// capacity, threshold) and deliberately ignores the diagnostic
/// [`LocalityClassifier::mode_flips`] / [`LocalityClassifier::peak_tracked`]
/// counters: a classifier rebuilt from a snapshot behaves identically even
/// though its history counters restart at zero.
impl PartialEq for LocalityClassifier {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries && self.capacity == other.capacity && self.rt == other.rt
    }
}

impl Eq for LocalityClassifier {}

impl LocalityClassifier {
    /// Creates a classifier with all cores initially in non-replica mode.
    ///
    /// # Panics
    ///
    /// Panics if `rt` is zero or a limited classifier is requested with zero
    /// tracked cores.
    pub fn new(kind: ClassifierKind, rt: u32) -> Self {
        assert!(rt > 0, "replication threshold must be positive");
        if let ClassifierKind::Limited(k) = kind {
            assert!(k > 0, "limited classifier needs at least one tracked core");
        }
        LocalityClassifier {
            entries: Vec::new(),
            capacity: kind.capacity(),
            rt,
            mode_flips: 0,
            peak_tracked: 0,
        }
    }

    /// Cumulative replica/non-replica mode transitions of tracked cores
    /// (promotions + demotions) over this classifier's lifetime.
    pub fn mode_flips(&self) -> u64 {
        self.mode_flips
    }

    /// High-water mark of the number of simultaneously tracked cores.
    pub fn peak_tracked(&self) -> usize {
        self.peak_tracked
    }

    /// Resets the diagnostic counters to the baseline a classifier rebuilt
    /// by [`LocalityClassifier::from_snapshot`] starts from (zero flips,
    /// peak = current occupancy).  Checkpoint capture normalizes live
    /// classifiers with this so in-memory and JSON-round-tripped
    /// checkpoints restore identical state.
    pub fn reset_diagnostics(&mut self) {
        self.mode_flips = 0;
        self.peak_tracked = self.entries.len();
    }

    /// The replication threshold this classifier was built with.
    pub fn replication_threshold(&self) -> u32 {
        self.rt
    }

    /// Number of cores currently tracked.
    pub fn tracked_count(&self) -> usize {
        self.entries.len()
    }

    /// Cores currently tracked (in no particular order).
    pub fn tracked_cores(&self) -> Vec<CoreId> {
        self.entries.iter().map(|e| e.core).collect()
    }

    /// The classifier's tracked-core capacity: `None` for the Complete
    /// organization, `Some(k)` for Limited_k.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The full per-core state, in tracking order.
    ///
    /// The order is significant: the Limited_k organization replaces the
    /// *first* inactive entry, so two classifiers with the same entries in
    /// a different order can behave differently.  Checkers that encode
    /// classifier state (the `lad-check` model exploration) must therefore
    /// preserve this order.
    pub fn snapshot(&self) -> Vec<TrackedCore> {
        self.entries
            .iter()
            .map(|e| TrackedCore {
                core: e.core,
                mode: e.mode,
                home_reuse: e.home_reuse.value(),
                active: e.active,
            })
            .collect()
    }

    /// Rebuilds a classifier from a checkpointed [`LocalityClassifier::snapshot`],
    /// preserving the tracking order (which decides Limited_k replacement).
    ///
    /// # Panics
    ///
    /// Panics on the same bad parameters as [`LocalityClassifier::new`], on
    /// duplicate tracked cores, or on more entries than a limited
    /// classifier's capacity.
    pub fn from_snapshot(kind: ClassifierKind, rt: u32, entries: &[TrackedCore]) -> Self {
        let mut classifier = LocalityClassifier::new(kind, rt);
        if let Some(k) = classifier.capacity {
            assert!(
                entries.len() <= k,
                "{} tracked cores exceed the Limited_{k} capacity",
                entries.len()
            );
        }
        for tracked in entries {
            assert!(
                classifier.find(tracked.core).is_none(),
                "duplicate tracked core {:?}",
                tracked.core
            );
            classifier.entries.push(CoreEntry {
                core: tracked.core,
                mode: tracked.mode,
                home_reuse: SaturatingCounter::with_value(rt, tracked.home_reuse),
                active: tracked.active,
            });
        }
        classifier.peak_tracked = classifier.entries.len();
        classifier
    }

    /// The current replication mode of `core` (majority vote if untracked by
    /// a limited classifier; the initial non-replica mode if untracked by the
    /// complete classifier).
    pub fn mode(&self, core: CoreId) -> ReplicationMode {
        match self.find(core) {
            Some(idx) => self.entries[idx].mode,
            None => {
                if self.capacity.is_some() && !self.entries.is_empty() {
                    self.majority_mode()
                } else {
                    ReplicationMode::NonReplica
                }
            }
        }
    }

    /// The home-reuse counter of `core`, if tracked.
    pub fn home_reuse(&self, core: CoreId) -> Option<u32> {
        self.find(core)
            .map(|idx| self.entries[idx].home_reuse.value())
    }

    fn find(&self, core: CoreId) -> Option<usize> {
        self.entries.iter().position(|e| e.core == core)
    }

    fn majority_mode(&self) -> ReplicationMode {
        let replica_votes = self
            .entries
            .iter()
            .filter(|e| e.mode == ReplicationMode::Replica)
            .count();
        // Ties favour the conservative non-replica mode (the protocol's
        // initial state).
        if replica_votes * 2 > self.entries.len() {
            ReplicationMode::Replica
        } else {
            ReplicationMode::NonReplica
        }
    }

    /// Finds the tracking entry for `core`, allocating one if possible.
    ///
    /// Returns `Some(index)` if the core is (now) tracked, or `None` if the
    /// limited classifier has no free or replaceable entry, in which case the
    /// caller must fall back to the majority vote.
    fn track(&mut self, core: CoreId) -> Option<usize> {
        if let Some(idx) = self.find(core) {
            self.entries[idx].active = true;
            return Some(idx);
        }
        match self.capacity {
            None => {
                // Complete classifier: allocate lazily, initial mode.
                self.entries
                    .push(CoreEntry::new(core, ReplicationMode::NonReplica, self.rt));
                self.peak_tracked = self.peak_tracked.max(self.entries.len());
                Some(self.entries.len() - 1)
            }
            Some(k) => {
                if self.entries.len() < k {
                    // Free entry: start in the initial (non-replica) mode.
                    self.entries
                        .push(CoreEntry::new(core, ReplicationMode::NonReplica, self.rt));
                    self.peak_tracked = self.peak_tracked.max(self.entries.len());
                    return Some(self.entries.len() - 1);
                }
                // Replace an inactive sharer if one exists; its replacement
                // starts in the most probable mode (majority vote).
                if let Some(idx) = self.entries.iter().position(|e| !e.active) {
                    let mode = self.majority_mode();
                    self.entries[idx] = CoreEntry::new(core, mode, self.rt);
                    return Some(idx);
                }
                None
            }
        }
    }

    /// Handles a read (or instruction fetch) by `core` arriving at the home
    /// location, and returns the mode that governs whether a replica is
    /// installed for it.
    ///
    /// Non-replica sharers have their home-reuse counter incremented and are
    /// promoted once it reaches RT (Section 2.2.1).
    pub fn on_home_read(&mut self, core: CoreId) -> ReplicationMode {
        match self.track(core) {
            Some(idx) => {
                let entry = &mut self.entries[idx];
                entry.active = true;
                match entry.mode {
                    ReplicationMode::Replica => ReplicationMode::Replica,
                    ReplicationMode::NonReplica => {
                        let reuse = entry.home_reuse.increment();
                        if reuse >= self.rt {
                            entry.mode = ReplicationMode::Replica;
                            self.mode_flips += 1;
                            ReplicationMode::Replica
                        } else {
                            ReplicationMode::NonReplica
                        }
                    }
                }
            }
            None => self.mode(core),
        }
    }

    /// Handles a write by `writer` arriving at the home location, after the
    /// directory has invalidated the other copies (Section 2.2.2).
    ///
    /// `other_sharers_present` says whether any other core (replica or
    /// non-replica) shared the line at the time of the write.  Returns the
    /// writer's resulting mode, which decides whether an exclusive-state
    /// replica is installed for it (the migratory-data case).
    pub fn on_home_write(
        &mut self,
        writer: CoreId,
        other_sharers_present: bool,
    ) -> ReplicationMode {
        // Non-replica sharers other than the writer have not shown enough
        // reuse to be promoted: reset their counters and mark them inactive
        // (a non-replica core becomes inactive on a write by another core).
        for entry in &mut self.entries {
            if entry.core != writer && entry.mode == ReplicationMode::NonReplica {
                entry.home_reuse.reset();
                entry.active = false;
            }
        }

        match self.track(writer) {
            Some(idx) => {
                let rt = self.rt;
                let entry = &mut self.entries[idx];
                entry.active = true;
                match entry.mode {
                    ReplicationMode::Replica => ReplicationMode::Replica,
                    ReplicationMode::NonReplica => {
                        if other_sharers_present {
                            // Conflicting access pattern: restart the count at
                            // one (this access).
                            entry.home_reuse.set(1);
                        } else {
                            entry.home_reuse.increment();
                        }
                        if entry.home_reuse.value() >= rt {
                            entry.mode = ReplicationMode::Replica;
                            self.mode_flips += 1;
                            ReplicationMode::Replica
                        } else {
                            ReplicationMode::NonReplica
                        }
                    }
                }
            }
            None => self.mode(writer),
        }
    }

    /// Handles the acknowledgement of an **invalidation** of `core`'s LLC
    /// replica, carrying the replica-reuse counter it had accumulated
    /// (Section 2.2.3).
    ///
    /// The total reuse between conflicting writes is replica + home reuse;
    /// the core keeps replica status only if that total reached RT.
    pub fn on_replica_invalidated(&mut self, core: CoreId, replica_reuse: u32) {
        self.settle_replica(core, replica_reuse, true);
    }

    /// Handles the acknowledgement of an **eviction** of `core`'s LLC
    /// replica, carrying its replica-reuse counter (Section 2.2.3).
    ///
    /// Only the replica reuse matters here: it captures the reuse the line
    /// received at the replica location before local capacity pressure
    /// evicted it.
    pub fn on_replica_evicted(&mut self, core: CoreId, replica_reuse: u32) {
        self.settle_replica(core, replica_reuse, false);
    }

    fn settle_replica(&mut self, core: CoreId, replica_reuse: u32, include_home_reuse: bool) {
        let rt = self.rt;
        if let Some(idx) = self.find(core) {
            let entry = &mut self.entries[idx];
            let total = if include_home_reuse {
                replica_reuse.saturating_add(entry.home_reuse.value())
            } else {
                replica_reuse
            };
            let settled = if total >= rt {
                ReplicationMode::Replica
            } else {
                ReplicationMode::NonReplica
            };
            if entry.mode != settled {
                self.mode_flips += 1;
            }
            entry.mode = settled;
            // The home-reuse counter starts a fresh round of classification.
            entry.home_reuse.reset();
            // A replica core becomes inactive on an LLC invalidation or
            // eviction.
            entry.active = false;
        }
        // Untracked cores carry no per-core state to settle.
    }

    /// Handles the invalidation of a non-replica sharer's L1 copy (it holds
    /// no LLC replica, so there is no reuse to report); the core becomes
    /// inactive.
    pub fn on_sharer_invalidated(&mut self, core: CoreId) {
        if let Some(idx) = self.find(core) {
            self.entries[idx].active = false;
        }
    }

    /// Marks `core` inactive because its last L1 copy was evicted and it
    /// holds no replica (the core is no longer using the line).
    pub fn on_sharer_evicted(&mut self, core: CoreId) {
        self.on_sharer_invalidated(core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: usize) -> CoreId {
        CoreId::new(i)
    }

    fn limited(k: usize, rt: u32) -> LocalityClassifier {
        LocalityClassifier::new(ClassifierKind::Limited(k), rt)
    }

    fn complete(rt: u32) -> LocalityClassifier {
        LocalityClassifier::new(ClassifierKind::Complete, rt)
    }

    #[test]
    fn paper_default_is_limited3() {
        assert_eq!(ClassifierKind::paper_default(), ClassifierKind::Limited(3));
        assert_eq!(ClassifierKind::Limited(3).capacity(), Some(3));
        assert_eq!(ClassifierKind::Complete.capacity(), None);
    }

    #[test]
    fn initial_mode_is_non_replica() {
        let c = complete(3);
        assert_eq!(c.mode(core(0)), ReplicationMode::NonReplica);
        assert!(!c.mode(core(0)).allows_replica());
        assert_eq!(c.tracked_count(), 0);
        assert_eq!(c.home_reuse(core(0)), None);
    }

    #[test]
    fn promotion_after_rt_home_accesses() {
        let mut c = complete(3);
        assert_eq!(c.on_home_read(core(1)), ReplicationMode::NonReplica);
        assert_eq!(c.home_reuse(core(1)), Some(1));
        assert_eq!(c.on_home_read(core(1)), ReplicationMode::NonReplica);
        assert_eq!(c.on_home_read(core(1)), ReplicationMode::Replica);
        assert_eq!(c.mode(core(1)), ReplicationMode::Replica);
        // Further reads stay in replica mode.
        assert_eq!(c.on_home_read(core(1)), ReplicationMode::Replica);
    }

    #[test]
    fn rt_one_promotes_immediately() {
        let mut c = complete(1);
        assert_eq!(c.on_home_read(core(0)), ReplicationMode::Replica);
    }

    #[test]
    fn rt_eight_requires_eight_accesses() {
        let mut c = complete(8);
        for _ in 0..7 {
            assert_eq!(c.on_home_read(core(2)), ReplicationMode::NonReplica);
        }
        assert_eq!(c.on_home_read(core(2)), ReplicationMode::Replica);
    }

    #[test]
    fn eviction_with_good_reuse_keeps_replica_status() {
        let mut c = complete(3);
        for _ in 0..3 {
            c.on_home_read(core(1));
        }
        c.on_replica_evicted(core(1), 5);
        assert_eq!(c.mode(core(1)), ReplicationMode::Replica);
        assert_eq!(
            c.home_reuse(core(1)),
            Some(0),
            "home reuse resets for the next round"
        );
    }

    #[test]
    fn eviction_with_poor_reuse_demotes() {
        let mut c = complete(3);
        for _ in 0..3 {
            c.on_home_read(core(1));
        }
        c.on_replica_evicted(core(1), 2);
        assert_eq!(c.mode(core(1)), ReplicationMode::NonReplica);
    }

    #[test]
    fn invalidation_adds_home_and_replica_reuse() {
        let mut c = complete(3);
        for _ in 0..3 {
            c.on_home_read(core(1));
        }
        // New round: one home hit (counter = 1), then the replica (reuse 2)
        // is invalidated: total 3 >= RT keeps replica status.
        c.on_replica_evicted(core(1), 3); // stays replica, counter reset
        assert_eq!(c.mode(core(1)), ReplicationMode::Replica);
        // Simulate home reuse of 1 for a non-replica round:
        c.on_replica_invalidated(core(1), 2);
        // home reuse was 0 -> total 2 < 3: demoted.
        assert_eq!(c.mode(core(1)), ReplicationMode::NonReplica);
        c.on_home_read(core(1)); // home reuse 1
        c.on_replica_invalidated(core(1), 2); // total 3 >= RT: promoted again
        assert_eq!(c.mode(core(1)), ReplicationMode::Replica);
    }

    #[test]
    fn write_resets_other_non_replica_sharers() {
        let mut c = complete(3);
        c.on_home_read(core(1));
        c.on_home_read(core(1));
        c.on_home_read(core(2));
        assert_eq!(c.home_reuse(core(1)), Some(2));
        // Core 3 writes; both 1 and 2 are non-replica sharers and get reset.
        c.on_home_write(core(3), true);
        assert_eq!(c.home_reuse(core(1)), Some(0));
        assert_eq!(c.home_reuse(core(2)), Some(0));
    }

    #[test]
    fn migratory_writer_promotes_when_sole_sharer() {
        // Migratory data: one core repeatedly reads and writes with no other
        // concurrent sharers; its home reuse accumulates and promotes it.
        let mut c = complete(3);
        assert_eq!(c.on_home_write(core(4), false), ReplicationMode::NonReplica);
        assert_eq!(c.on_home_write(core(4), false), ReplicationMode::NonReplica);
        assert_eq!(c.on_home_write(core(4), false), ReplicationMode::Replica);
    }

    #[test]
    fn conflicting_writer_counter_restarts_at_one() {
        let mut c = complete(3);
        c.on_home_read(core(5));
        c.on_home_read(core(5));
        assert_eq!(c.home_reuse(core(5)), Some(2));
        // Another sharer exists at the time of the write: counter set to 1,
        // not incremented to 3, so no promotion.
        assert_eq!(c.on_home_write(core(5), true), ReplicationMode::NonReplica);
        assert_eq!(c.home_reuse(core(5)), Some(1));
    }

    #[test]
    fn replica_mode_writer_stays_replica() {
        let mut c = complete(1);
        assert_eq!(c.on_home_read(core(0)), ReplicationMode::Replica);
        assert_eq!(c.on_home_write(core(0), true), ReplicationMode::Replica);
    }

    #[test]
    fn limited_tracks_at_most_k_cores() {
        let mut c = limited(3, 3);
        for i in 0..5 {
            c.on_home_read(core(i));
        }
        assert_eq!(c.tracked_count(), 3);
        let tracked = c.tracked_cores();
        assert!(tracked.contains(&core(0)));
        assert!(tracked.contains(&core(1)));
        assert!(tracked.contains(&core(2)));
    }

    #[test]
    fn limited_untracked_core_uses_majority_vote() {
        let mut c = limited(3, 1); // RT=1: every read promotes
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        c.on_home_read(core(2));
        // All three tracked cores are replicas; untracked core 9 follows the
        // majority.
        assert_eq!(c.mode(core(9)), ReplicationMode::Replica);
        assert_eq!(c.on_home_read(core(9)), ReplicationMode::Replica);
        // With a non-replica majority the untracked core is conservative.
        let mut c = limited(3, 3);
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        c.on_home_read(core(2));
        assert_eq!(c.mode(core(9)), ReplicationMode::NonReplica);
        assert_eq!(c.on_home_read(core(9)), ReplicationMode::NonReplica);
    }

    #[test]
    fn majority_vote_ties_are_conservative() {
        let mut c = limited(2, 1);
        c.on_home_read(core(0)); // replica (RT=1)
                                 // Manually leave core 1 in non-replica mode by only giving core 0
                                 // accesses; allocate core 1 with a write that does not promote.
        let mut c2 = limited(2, 3);
        c2.on_home_read(core(0));
        c2.on_home_read(core(0));
        c2.on_home_read(core(0)); // promoted
        c2.on_home_read(core(1)); // non-replica
                                  // 1 replica vs 1 non-replica: tie -> non-replica for untracked cores.
        assert_eq!(c2.mode(core(7)), ReplicationMode::NonReplica);
        drop(c);
    }

    #[test]
    fn limited_replaces_inactive_entries_first() {
        let mut c = limited(2, 3);
        // Track cores 0 and 1.
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        assert_eq!(c.tracked_count(), 2);
        // Core 2 cannot be tracked yet (no inactive entry): majority vote.
        c.on_home_read(core(2));
        assert!(!c.tracked_cores().contains(&core(2)));
        // Core 1's replica round ends (eviction): it becomes inactive and its
        // entry can be reallocated to core 2.
        c.on_replica_evicted(core(1), 0);
        c.on_home_read(core(2));
        assert!(c.tracked_cores().contains(&core(2)));
        assert!(!c.tracked_cores().contains(&core(1)));
        assert_eq!(c.tracked_count(), 2);
    }

    #[test]
    fn limited_replacement_inherits_majority_mode() {
        let mut c = limited(3, 1); // RT=1 promotes on first access
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        c.on_home_read(core(2));
        // Demote + deactivate core 2 so its entry is replaceable, leaving a
        // replica majority (cores 0, 1).
        c.on_replica_evicted(core(2), 0);
        assert_eq!(c.mode(core(2)), ReplicationMode::NonReplica);
        // Core 5 takes the inactive entry and starts in the majority mode
        // (replica), so its very first read is served with a replica.
        assert_eq!(c.on_home_read(core(5)), ReplicationMode::Replica);
        assert!(c.tracked_cores().contains(&core(5)));
    }

    #[test]
    fn write_marks_other_sharers_inactive_for_replacement() {
        let mut c = limited(2, 3);
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        // Core 1 writes: core 0 (non-replica) becomes inactive.
        c.on_home_write(core(1), true);
        // Core 2 can now displace core 0's entry.
        c.on_home_read(core(2));
        assert!(c.tracked_cores().contains(&core(2)));
        assert!(!c.tracked_cores().contains(&core(0)));
    }

    #[test]
    fn untracked_settlement_is_a_no_op() {
        let mut c = limited(1, 3);
        c.on_home_read(core(0));
        // Core 9 is untracked; settling it must not disturb tracked state.
        c.on_replica_evicted(core(9), 5);
        c.on_replica_invalidated(core(9), 5);
        c.on_sharer_invalidated(core(9));
        c.on_sharer_evicted(core(9));
        assert_eq!(c.tracked_count(), 1);
        assert_eq!(c.home_reuse(core(0)), Some(1));
    }

    #[test]
    fn sharer_eviction_marks_inactive() {
        let mut c = limited(1, 3);
        c.on_home_read(core(0));
        c.on_sharer_evicted(core(0));
        // Entry is inactive, so a new core can take it over immediately.
        c.on_home_read(core(1));
        assert_eq!(c.tracked_cores(), vec![core(1)]);
    }

    #[test]
    fn complete_classifier_never_replaces() {
        let mut c = complete(3);
        for i in 0..100 {
            c.on_home_read(core(i));
        }
        assert_eq!(c.tracked_count(), 100);
    }

    #[test]
    #[should_panic(expected = "replication threshold")]
    fn zero_rt_rejected() {
        LocalityClassifier::new(ClassifierKind::Complete, 0);
    }

    #[test]
    #[should_panic(expected = "at least one tracked core")]
    fn zero_capacity_rejected() {
        LocalityClassifier::new(ClassifierKind::Limited(0), 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_tracking_order() {
        let mut c = limited(2, 3);
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        c.on_home_write(core(1), true); // core 0 reset + inactive

        let rebuilt = LocalityClassifier::from_snapshot(
            ClassifierKind::Limited(2),
            c.replication_threshold(),
            &c.snapshot(),
        );
        assert_eq!(rebuilt, c);
        // Replacement picks the same (first inactive) entry afterwards: the
        // order survived, so future behavior is identical.
        let mut c2 = rebuilt;
        c.on_home_read(core(2));
        c2.on_home_read(core(2));
        assert_eq!(c2, c);
        assert_eq!(c.tracked_cores(), vec![core(2), core(1)]);
    }

    #[test]
    #[should_panic(expected = "exceed the Limited_1 capacity")]
    fn snapshot_restore_rejects_overfull_entries() {
        let mut c = limited(2, 3);
        c.on_home_read(core(0));
        c.on_home_read(core(1));
        LocalityClassifier::from_snapshot(ClassifierKind::Limited(1), 3, &c.snapshot());
    }

    #[test]
    fn variance_counters_track_flips_and_peak_occupancy() {
        let mut c = limited(2, 3);
        assert_eq!(c.mode_flips(), 0);
        assert_eq!(c.peak_tracked(), 0);
        for _ in 0..3 {
            c.on_home_read(core(0)); // promotion at the third read
        }
        assert_eq!(c.mode_flips(), 1);
        assert_eq!(c.peak_tracked(), 1);
        c.on_home_read(core(1));
        assert_eq!(c.peak_tracked(), 2);
        // Demotion on a poor-reuse eviction is a second flip...
        c.on_replica_evicted(core(0), 0);
        assert_eq!(c.mode_flips(), 2);
        // ...but settling into the same mode is not.
        c.on_replica_evicted(core(0), 5);
        c.on_replica_evicted(core(0), 5);
        assert_eq!(c.mode_flips(), 3, "demote->promote, then promote->promote");
        // Peak is a high-water mark: replacement does not lower it.
        assert_eq!(c.peak_tracked(), 2);
        // The counters are diagnostic: equality and snapshots ignore them.
        let rebuilt = LocalityClassifier::from_snapshot(
            ClassifierKind::Limited(2),
            c.replication_threshold(),
            &c.snapshot(),
        );
        assert_eq!(rebuilt, c);
        assert_eq!(rebuilt.mode_flips(), 0);
        assert_eq!(rebuilt.peak_tracked(), rebuilt.tracked_count());
    }

    #[test]
    fn migratory_write_promotion_counts_one_flip() {
        let mut c = complete(3);
        c.on_home_write(core(4), false);
        c.on_home_write(core(4), false);
        assert_eq!(c.mode_flips(), 0);
        c.on_home_write(core(4), false);
        assert_eq!(c.mode_flips(), 1);
        // Staying in replica mode adds nothing.
        c.on_home_write(core(4), true);
        assert_eq!(c.mode_flips(), 1);
    }

    #[test]
    fn display_modes() {
        assert_eq!(ReplicationMode::Replica.to_string(), "replica");
        assert_eq!(ReplicationMode::NonReplica.to_string(), "non-replica");
    }
}
