//! Property tests for the saturating Replica-Reuse / Home-Reuse counters
//! (Figure 4): under *any* interleaving of protocol operations the counter
//! must stay inside `[0, max]`, never wrap below zero, and be monotone
//! non-decreasing under increments.

use lad_replication::counter::SaturatingCounter;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Increment,
    Reset,
    Set(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Increment),
        Just(Op::Reset),
        (0u32..64).prop_map(Op::Set),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The counter value never leaves `[0, max]` whatever the op sequence;
    /// with the paper's RT = 3 ceiling it always fits the 2 storage bits of
    /// Section 2.4.1.
    #[test]
    fn value_stays_within_ceiling(
        max in 1u32..16,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut counter = SaturatingCounter::new(max);
        for op in ops {
            match op {
                Op::Increment => { counter.increment(); }
                Op::Reset => counter.reset(),
                Op::Set(v) => counter.set(v),
            }
            prop_assert!(counter.value() <= counter.max());
            prop_assert!(counter.value() < (1u32 << counter.storage_bits()));
        }
    }

    /// Increments are monotone non-decreasing and gain at most one per step
    /// (no underflow via wrap-around, no skipped states).
    #[test]
    fn increments_are_monotone(
        max in 1u32..16,
        start in 0u32..64,
        steps in 1usize..64,
    ) {
        let mut counter = SaturatingCounter::with_value(max, start);
        let mut previous = counter.value();
        for _ in 0..steps {
            let next = counter.increment();
            prop_assert!(next >= previous, "increment went backwards: {previous} -> {next}");
            prop_assert!(next - previous <= 1, "increment skipped states: {previous} -> {next}");
            prop_assert!(next <= max);
            previous = next;
        }
    }

    /// Enough increments always saturate exactly at the ceiling, and the
    /// saturated counter reports `reached(threshold)` for every threshold up
    /// to the ceiling — the condition the classifier's promotion to replica
    /// mode keys on.
    #[test]
    fn saturates_exactly_at_ceiling(max in 1u32..16) {
        let mut counter = SaturatingCounter::new(max);
        for _ in 0..(max + 5) {
            counter.increment();
        }
        prop_assert_eq!(counter.value(), max);
        for threshold in 0..=max {
            prop_assert!(counter.reached(threshold));
        }
        prop_assert!(!counter.reached(max + 1));
    }

    /// Reset always lands on zero and `with_value`/`set` clamp instead of
    /// wrapping, from any state.
    #[test]
    fn reset_and_set_never_underflow_or_overflow(
        max in 1u32..16,
        value in 0u32..1024,
    ) {
        let mut counter = SaturatingCounter::with_value(max, value);
        prop_assert!(counter.value() <= max);
        counter.set(value);
        prop_assert!(counter.value() <= max);
        prop_assert_eq!(counter.value(), value.min(max));
        counter.reset();
        prop_assert_eq!(counter.value(), 0);
    }
}
