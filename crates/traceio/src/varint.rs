//! LEB128 varints, zigzag signed mapping, and the wrapping delta transform —
//! the three codecs every LADT frame is built from.
//!
//! * **varint** — base-128 little-endian with a continuation bit; small
//!   magnitudes (the common case after delta transformation) take one byte.
//! * **zigzag** — maps signed deltas to unsigned so that small *negative*
//!   deltas also stay short (`0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`).
//! * **delta** — each value is encoded as its wrapping difference from the
//!   previous value of the same stream, which turns the strided address
//!   sequences of real workloads into streams of tiny integers.
//!
//! Decoders never panic on malformed input: truncation and overlong
//! encodings surface as [`TraceError`]s.

use std::io::Read;

use crate::error::TraceError;

/// Maximum number of bytes a `u64` varint may occupy (⌈64 / 7⌉).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `value` to `buf` as a LEB128 varint.
pub fn encode_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from `input` starting at `*pos`, advancing `*pos`
/// past it.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the slice ends mid-varint, and
/// [`TraceError::Corrupt`] for encodings longer than [`MAX_VARINT_BYTES`] or
/// whose tenth byte overflows 64 bits.
pub fn decode_u64(input: &[u8], pos: &mut usize, context: &'static str) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = input.get(*pos) else {
            return Err(TraceError::Truncated { context });
        };
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        // The tenth byte may only contribute the single remaining bit.
        if shift == 63 && payload > 1 {
            return Err(TraceError::Corrupt { context });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceError::Corrupt { context });
        }
    }
}

/// Decodes a LEB128 varint directly from a reader (used for the structures
/// that precede a length-delimited payload: header fields and frame
/// headers).
///
/// Returns `Ok(None)` if the reader is already at EOF — callers use this to
/// distinguish a clean end-of-stream from truncation inside a varint.
pub fn read_u64(reader: &mut impl Read, context: &'static str) -> Result<Option<u64>, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if first {
                    Ok(None)
                } else {
                    Err(TraceError::Truncated { context })
                };
            }
            Ok(_) => {}
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(TraceError::Io(err)),
        }
        first = false;
        let payload = u64::from(byte[0] & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(TraceError::Corrupt { context });
        }
        value |= payload << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceError::Corrupt { context });
        }
    }
}

/// Maps a signed value to unsigned with the zigzag transform.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// The wrapping delta from `previous` to `current`, as a zigzag-friendly
/// signed value.  Total for all `u64` pairs: [`apply_delta`] inverts it.
pub fn delta(previous: u64, current: u64) -> i64 {
    current.wrapping_sub(previous) as i64
}

/// Applies a delta produced by [`delta`] to `previous`.
pub fn apply_delta(previous: u64, delta: i64) -> u64 {
    previous.wrapping_add(delta as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundary_values() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_u64(&mut buf, value);
            assert!(buf.len() <= MAX_VARINT_BYTES);
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos, "test").unwrap(), value);
            assert_eq!(pos, buf.len());
            // The reader-based decoder agrees.
            let mut cursor = std::io::Cursor::new(buf);
            assert_eq!(read_u64(&mut cursor, "test").unwrap(), Some(value));
        }
    }

    #[test]
    fn truncated_varints_are_errors_not_panics() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, u64::MAX);
        for len in 0..buf.len() {
            let mut pos = 0;
            match decode_u64(&buf[..len], &mut pos, "test") {
                Err(TraceError::Truncated { .. }) => {}
                other => panic!("prefix of length {len} decoded to {other:?}"),
            }
        }
        // EOF at a varint boundary is a clean None for the reader variant.
        let mut empty = std::io::Cursor::new(Vec::new());
        assert!(read_u64(&mut empty, "test").unwrap().is_none());
        // ...but EOF *inside* a varint is truncation.
        let mut partial = std::io::Cursor::new(vec![0x80u8]);
        assert!(matches!(
            read_u64(&mut partial, "test"),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn overlong_varints_are_corrupt() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            decode_u64(&buf, &mut pos, "test"),
            Err(TraceError::Corrupt { .. })
        ));
        // A tenth byte carrying more than the final bit overflows.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert!(matches!(
            decode_u64(&buf, &mut pos, "test"),
            Err(TraceError::Corrupt { .. })
        ));
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_u64(&mut cursor, "test"),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn zigzag_interleaves_signs() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for value in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(value)), value);
        }
    }

    #[test]
    fn delta_is_total_over_u64() {
        for (a, b) in [
            (0u64, u64::MAX),
            (u64::MAX, 0),
            (5, 3),
            (3, 5),
            (1 << 63, 0),
        ] {
            assert_eq!(apply_delta(a, delta(a, b)), b);
        }
    }
}
