//! The LADT container format.
//!
//! ```text
//! stream  := header frame* end
//! header  := magic "LADT" (4 bytes)
//!            version   varint   (currently 1)
//!            num_cores varint
//!            name_len  varint, name bytes (UTF-8 benchmark label)
//!            seed      varint   (generation seed, for provenance)
//! frame   := core+1    varint   (0 is reserved for `end`)
//!            count     varint   (accesses in this frame, >= 1)
//!            byte_len  varint   (payload length in bytes)
//!            payload   byte_len bytes
//! end     := 0x00
//! ```
//!
//! A frame's payload is `count` accesses of **one** core, each encoded as
//!
//! ```text
//! access  := flags (1 byte: op in bits 0-1, class in bits 2-3)
//!            zigzag-varint address delta   (vs. the core's previous access)
//!            zigzag-varint compute delta   (vs. the core's previous access)
//! ```
//!
//! Delta state is *per core* and persists across that core's frames, so a
//! trace may be chunked at any granularity without resetting the
//! compression context.  Frames of different cores may be interleaved
//! freely; the canonical writers round-robin them chunk-by-chunk so a
//! streaming reader never has to buffer more than one chunk per core.
//!
//! # Versioning rules
//!
//! The version is bumped only for changes a version-1 reader cannot skip
//! (new access fields, different delta discipline).  Readers reject newer
//! versions with [`TraceError::UnsupportedVersion`] rather than guessing;
//! additive metadata must ride in new frame kinds under a future version,
//! never in silent header extensions.

use lad_common::types::{Address, CoreId, DataClass, MemOp, MemoryAccess};

use crate::error::TraceError;
use crate::varint;

/// The four magic bytes every LADT stream starts with.
pub const MAGIC: [u8; 4] = *b"LADT";

/// The format version this crate reads and writes.
pub const FORMAT_VERSION: u64 = 1;

/// Default number of accesses per frame used by the writers.  At roughly
/// 3-5 bytes per encoded access this keeps frames in the tens of kilobytes —
/// large enough to amortize framing, small enough that a streaming reader's
/// working set stays trivially bounded.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// Hard cap on the accesses a single frame may carry, enforced by both the
/// writer (maximum chunk size) and the reader (frames claiming more are
/// [`TraceError::Corrupt`]).  Bounds a reader's working set — payload and
/// decoded buffer stay in the tens of megabytes — no matter what a
/// malicious or damaged stream claims.
pub const MAX_FRAME_ACCESSES: usize = 1 << 20;

/// Everything the header records about a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Number of cores the trace spans (streams are `0..num_cores`).
    pub num_cores: usize,
    /// Benchmark label (e.g. `"BARNES"`), for report naming.
    pub benchmark: String,
    /// The seed the trace was generated from (provenance; replay does not
    /// re-derive anything from it).
    pub seed: u64,
}

impl TraceHeader {
    /// Creates a header.
    pub fn new(num_cores: usize, benchmark: impl Into<String>, seed: u64) -> Self {
        TraceHeader {
            num_cores,
            benchmark: benchmark.into(),
            seed,
        }
    }

    /// Serializes the header (including magic and version) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&MAGIC);
        varint::encode_u64(buf, FORMAT_VERSION);
        varint::encode_u64(buf, self.num_cores as u64);
        varint::encode_u64(buf, self.benchmark.len() as u64);
        buf.extend_from_slice(self.benchmark.as_bytes());
        varint::encode_u64(buf, self.seed);
    }

    /// Reads and validates a header from the start of a stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`], or a
    /// truncation/corruption error for malformed fields.
    pub fn decode(reader: &mut impl std::io::Read) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        read_exact(reader, &mut magic, "magic")?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic { found: magic });
        }
        let version = require(varint::read_u64(reader, "version")?, "version")?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion { version });
        }
        let num_cores = require(varint::read_u64(reader, "core count")?, "core count")?;
        if num_cores == 0 || num_cores > u16::MAX as u64 {
            return Err(TraceError::Corrupt {
                context: "core count",
            });
        }
        let name_len = require(varint::read_u64(reader, "name length")?, "name length")?;
        if name_len > 4096 {
            return Err(TraceError::Corrupt {
                context: "name length",
            });
        }
        let mut name = vec![0u8; name_len as usize];
        read_exact(reader, &mut name, "benchmark name")?;
        let benchmark = String::from_utf8(name).map_err(|_| TraceError::Corrupt {
            context: "benchmark name",
        })?;
        let seed = require(varint::read_u64(reader, "seed")?, "seed")?;
        Ok(TraceHeader {
            num_cores: num_cores as usize,
            benchmark,
            seed,
        })
    }
}

fn require(value: Option<u64>, context: &'static str) -> Result<u64, TraceError> {
    value.ok_or(TraceError::Truncated { context })
}

/// `read_exact` with EOF mapped to [`TraceError::Truncated`].
pub(crate) fn read_exact(
    reader: &mut impl std::io::Read,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), TraceError> {
    reader.read_exact(buf).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { context }
        } else {
            TraceError::Io(err)
        }
    })
}

/// Per-core codec state: the previous address and compute-cycle values the
/// deltas of the next access are taken against.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaState {
    address: u64,
    compute: u64,
}

fn op_bits(op: MemOp) -> u8 {
    match op {
        MemOp::Read => 0,
        MemOp::Write => 1,
        MemOp::InstructionFetch => 2,
    }
}

fn op_from_bits(bits: u8) -> Option<MemOp> {
    match bits {
        0 => Some(MemOp::Read),
        1 => Some(MemOp::Write),
        2 => Some(MemOp::InstructionFetch),
        _ => None,
    }
}

fn class_bits(class: DataClass) -> u8 {
    match class {
        DataClass::Private => 0,
        DataClass::Instruction => 1,
        DataClass::SharedReadOnly => 2,
        DataClass::SharedReadWrite => 3,
    }
}

fn class_from_bits(bits: u8) -> DataClass {
    match bits & 0x3 {
        0 => DataClass::Private,
        1 => DataClass::Instruction,
        2 => DataClass::SharedReadOnly,
        _ => DataClass::SharedReadWrite,
    }
}

/// Encodes one access against `state`, advancing the state.
pub fn encode_access(buf: &mut Vec<u8>, state: &mut DeltaState, access: &MemoryAccess) {
    let flags = op_bits(access.op) | (class_bits(access.class) << 2);
    buf.push(flags);
    let address = access.address.value();
    varint::encode_u64(buf, varint::zigzag(varint::delta(state.address, address)));
    state.address = address;
    let compute = u64::from(access.compute_cycles);
    varint::encode_u64(buf, varint::zigzag(varint::delta(state.compute, compute)));
    state.compute = compute;
}

/// Decodes one access of `core` from `payload` at `*pos`, advancing the
/// position and `state`.
///
/// # Errors
///
/// Truncation/corruption errors for malformed payload bytes, and
/// [`TraceError::Corrupt`] when the decoded compute delta leaves the `u32`
/// range or the flags byte uses reserved bits.
pub fn decode_access(
    payload: &[u8],
    pos: &mut usize,
    state: &mut DeltaState,
    core: CoreId,
) -> Result<MemoryAccess, TraceError> {
    let Some(&flags) = payload.get(*pos) else {
        return Err(TraceError::Truncated {
            context: "access flags",
        });
    };
    *pos += 1;
    if flags & !0x0f != 0 {
        return Err(TraceError::Corrupt {
            context: "access flags",
        });
    }
    let Some(op) = op_from_bits(flags & 0x3) else {
        return Err(TraceError::Corrupt {
            context: "access op",
        });
    };
    let class = class_from_bits(flags >> 2);
    let address_delta = varint::unzigzag(varint::decode_u64(payload, pos, "address delta")?);
    state.address = varint::apply_delta(state.address, address_delta);
    let compute_delta = varint::unzigzag(varint::decode_u64(payload, pos, "compute delta")?);
    state.compute = varint::apply_delta(state.compute, compute_delta);
    let compute = u32::try_from(state.compute).map_err(|_| TraceError::Corrupt {
        context: "compute delta",
    })?;
    Ok(MemoryAccess {
        core,
        address: Address::new(state.address),
        op,
        compute_cycles: compute,
        class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let header = TraceHeader::new(64, "OCEAN-C", 0x1ad);
        let mut buf = Vec::new();
        header.encode(&mut buf);
        let decoded = TraceHeader::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, header);
    }

    #[test]
    fn header_rejects_bad_magic_and_future_versions() {
        let mut buf = Vec::new();
        TraceHeader::new(4, "X", 1).encode(&mut buf);
        let mut wrong = buf.clone();
        wrong[0] = b'E';
        assert!(matches!(
            TraceHeader::decode(&mut wrong.as_slice()),
            Err(TraceError::BadMagic { .. })
        ));
        let mut future = buf.clone();
        future[4] = 9; // version varint is a single byte for small versions
        assert!(matches!(
            TraceHeader::decode(&mut future.as_slice()),
            Err(TraceError::UnsupportedVersion { version: 9 })
        ));
        // Truncating anywhere inside the header is an error, never a panic.
        for len in 0..buf.len() {
            assert!(TraceHeader::decode(&mut buf[..len].to_vec().as_slice()).is_err());
        }
    }

    #[test]
    fn header_rejects_zero_cores() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        varint::encode_u64(&mut buf, FORMAT_VERSION);
        varint::encode_u64(&mut buf, 0); // zero cores
        assert!(matches!(
            TraceHeader::decode(&mut buf.as_slice()),
            Err(TraceError::Corrupt {
                context: "core count"
            })
        ));
    }

    #[test]
    fn access_codec_roundtrips_and_shrinks_strided_streams() {
        let core = CoreId::new(3);
        let accesses: Vec<MemoryAccess> = (0..64u64)
            .map(|i| MemoryAccess {
                core,
                address: Address::new(0x4000_0000 + i * 64),
                op: if i % 3 == 0 {
                    MemOp::Write
                } else {
                    MemOp::Read
                },
                compute_cycles: 20 + (i % 5) as u32,
                class: DataClass::SharedReadWrite,
            })
            .collect();
        let mut buf = Vec::new();
        let mut enc = DeltaState::default();
        for access in &accesses {
            encode_access(&mut buf, &mut enc, access);
        }
        // A strided stream costs a few bytes per access, far below the
        // 24-byte in-memory representation.
        assert!(
            buf.len() <= accesses.len() * 5,
            "{} bytes for {} accesses",
            buf.len(),
            accesses.len()
        );
        let mut pos = 0;
        let mut dec = DeltaState::default();
        for access in &accesses {
            assert_eq!(
                &decode_access(&buf, &mut pos, &mut dec, core).unwrap(),
                access
            );
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn reserved_flag_bits_and_oversized_compute_are_corrupt() {
        let mut pos = 0;
        let mut state = DeltaState::default();
        assert!(matches!(
            decode_access(&[0xf0, 0, 0], &mut pos, &mut state, CoreId::new(0)),
            Err(TraceError::Corrupt {
                context: "access flags"
            })
        ));
        // op bits 3 is reserved.
        let mut pos = 0;
        assert!(matches!(
            decode_access(&[0x03, 0, 0], &mut pos, &mut state, CoreId::new(0)),
            Err(TraceError::Corrupt {
                context: "access op"
            })
        ));
        // A compute value beyond u32::MAX cannot come from a valid writer.
        let mut buf = vec![0u8];
        varint::encode_u64(&mut buf, varint::zigzag(0));
        varint::encode_u64(&mut buf, varint::zigzag(1i64 << 40));
        let mut pos = 0;
        let mut state = DeltaState::default();
        assert!(matches!(
            decode_access(&buf, &mut pos, &mut state, CoreId::new(0)),
            Err(TraceError::Corrupt {
                context: "compute delta"
            })
        ));
    }
}
