//! Streaming LADT deserialization.

use std::collections::VecDeque;
use std::io::Read;

use lad_common::types::{CoreId, MemoryAccess};

use crate::error::TraceError;
use crate::format::{self, DeltaState, TraceHeader};
use crate::varint;

/// Reads a LADT stream incrementally over any [`std::io::Read`].
///
/// The reader holds exactly one decoded frame at a time (plus O(`num_cores`)
/// delta state), so a trace is replayed in O(chunk) memory no matter how
/// large the file is — [`TraceReader::buffered_accesses`] and
/// [`TraceReader::max_buffered_accesses`] expose the buffer occupancy so
/// tests can assert the bound on reader state directly.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    header: TraceHeader,
    states: Vec<DeltaState>,
    /// Decoded accesses of the current frame, drained front-to-back.
    buffer: VecDeque<MemoryAccess>,
    max_buffered: usize,
    accesses_read: u64,
    finished: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream by reading and validating its header.
    ///
    /// # Errors
    ///
    /// Header decode errors ([`TraceError::BadMagic`],
    /// [`TraceError::UnsupportedVersion`], truncation, I/O).
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let header = TraceHeader::decode(&mut input)?;
        Ok(TraceReader {
            states: vec![DeltaState::default(); header.num_cores],
            input,
            header,
            buffer: VecDeque::new(),
            max_buffered: 0,
            accesses_read: 0,
            finished: false,
        })
    }

    /// The stream's header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Accesses currently buffered from the frame being drained.
    pub fn buffered_accesses(&self) -> usize {
        self.buffer.len()
    }

    /// High-water mark of [`TraceReader::buffered_accesses`] over the whole
    /// stream so far — never exceeds the largest frame's access count.
    pub fn max_buffered_accesses(&self) -> usize {
        self.max_buffered
    }

    /// Total accesses returned so far.
    pub fn accesses_read(&self) -> u64 {
        self.accesses_read
    }

    /// Returns the next access in stream order, or `None` after the end
    /// marker.
    ///
    /// # Errors
    ///
    /// Truncation/corruption errors for malformed frames; a missing end
    /// marker (EOF where a frame should start) is reported as truncation so
    /// interrupted recordings cannot masquerade as complete traces.
    pub fn next_access(&mut self) -> Result<Option<MemoryAccess>, TraceError> {
        loop {
            if let Some(access) = self.buffer.pop_front() {
                self.accesses_read += 1;
                return Ok(Some(access));
            }
            if self.finished {
                return Ok(None);
            }
            self.read_frame()?;
        }
    }

    /// Consumes the reader and returns the underlying stream (positioned
    /// wherever reading stopped).
    pub fn into_inner(self) -> R {
        self.input
    }

    fn read_frame(&mut self) -> Result<(), TraceError> {
        let Some(tag) = varint::read_u64(&mut self.input, "frame core")? else {
            // EOF where a frame (or the end marker) should start.
            return Err(TraceError::Truncated {
                context: "frame core",
            });
        };
        if tag == 0 {
            self.finished = true;
            return Ok(());
        }
        let core_index = (tag - 1) as usize;
        if core_index >= self.header.num_cores {
            return Err(TraceError::InvalidCore {
                core: core_index,
                num_cores: self.header.num_cores,
            });
        }
        let count =
            varint::read_u64(&mut self.input, "frame count")?.ok_or(TraceError::Truncated {
                context: "frame count",
            })?;
        // Zero-access frames are never written, and no writer emits frames
        // beyond MAX_FRAME_ACCESSES — reject implausible counts before they
        // size anything.
        if count == 0 || count > format::MAX_FRAME_ACCESSES as u64 {
            return Err(TraceError::Corrupt {
                context: "frame count",
            });
        }
        let byte_len =
            varint::read_u64(&mut self.input, "frame length")?.ok_or(TraceError::Truncated {
                context: "frame length",
            })?;
        // A valid access takes at least 3 bytes (flags + two 1-byte deltas)
        // and at most 21 (flags + two 10-byte varints); anything outside
        // that envelope is structurally impossible.
        if byte_len < count.saturating_mul(3) || byte_len > count.saturating_mul(21) {
            return Err(TraceError::Corrupt {
                context: "frame length",
            });
        }
        // Read via `take` + `read_to_end` so the allocation grows with the
        // bytes actually present: a tiny file claiming a huge frame costs
        // only what it ships, not what it claims.
        let mut payload = Vec::new();
        let got = (&mut self.input).take(byte_len).read_to_end(&mut payload)?;
        if (got as u64) < byte_len {
            return Err(TraceError::Truncated {
                context: "frame payload",
            });
        }

        let core = CoreId::new(core_index);
        let state = &mut self.states[core_index];
        let mut pos = 0usize;
        for _ in 0..count {
            self.buffer
                .push_back(format::decode_access(&payload, &mut pos, state, core)?);
        }
        if pos != payload.len() {
            return Err(TraceError::Corrupt {
                context: "frame payload",
            });
        }
        self.max_buffered = self.max_buffered.max(self.buffer.len());
        Ok(())
    }
}

/// Decodes a whole LADT byte stream into per-core access vectors (the
/// in-memory convenience used by tests and `convert`).
///
/// # Errors
///
/// Any reader error.
pub fn decode_all<R: Read>(input: R) -> Result<(TraceHeader, Vec<Vec<MemoryAccess>>), TraceError> {
    let mut reader = TraceReader::new(input)?;
    let mut per_core: Vec<Vec<MemoryAccess>> = vec![Vec::new(); reader.header().num_cores];
    while let Some(access) = reader.next_access()? {
        per_core[access.core.index()].push(access);
    }
    let header = reader.header().clone();
    Ok((header, per_core))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceHeader;
    use crate::writer::TraceWriter;
    use lad_common::types::{Address, CoreId};

    fn sample_bytes() -> Vec<u8> {
        let mut writer =
            TraceWriter::with_chunk_size(Vec::new(), TraceHeader::new(2, "T", 7), 4).unwrap();
        for i in 0..10u64 {
            for core in 0..2 {
                writer
                    .write_access(&MemoryAccess::read(CoreId::new(core), Address::new(i * 64)))
                    .unwrap();
            }
        }
        writer.finish().unwrap()
    }

    #[test]
    fn reader_streams_every_access_then_reports_eof() {
        let bytes = sample_bytes();
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.header().benchmark, "T");
        let mut count = 0;
        while let Some(access) = reader.next_access().unwrap() {
            assert!(access.core.index() < 2);
            count += 1;
        }
        assert_eq!(count, 20);
        assert_eq!(reader.accesses_read(), 20);
        assert!(reader.max_buffered_accesses() <= 4);
        // Subsequent calls keep returning None.
        assert!(reader.next_access().unwrap().is_none());
    }

    #[test]
    fn missing_end_marker_is_truncation() {
        let mut bytes = sample_bytes();
        bytes.pop(); // drop the end marker
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let result =
            std::iter::from_fn(|| reader.next_access().transpose()).collect::<Result<Vec<_>, _>>();
        assert!(matches!(
            result,
            Err(TraceError::Truncated {
                context: "frame core"
            })
        ));
    }

    #[test]
    fn frame_naming_an_unknown_core_is_rejected() {
        let mut bytes = Vec::new();
        TraceHeader::new(1, "T", 0).encode(&mut bytes);
        bytes.push(9); // frame for core 8 of a 1-core trace
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_access(),
            Err(TraceError::InvalidCore {
                core: 8,
                num_cores: 1
            })
        ));
    }

    #[test]
    fn huge_claimed_frames_cost_only_the_bytes_shipped() {
        use crate::varint;
        // A ~20-byte file claiming a maximal frame with no payload behind
        // it: the reader must report truncation without allocating the
        // claimed megabytes up front.
        let mut bytes = Vec::new();
        TraceHeader::new(1, "T", 0).encode(&mut bytes);
        varint::encode_u64(&mut bytes, 1); // core 0
        varint::encode_u64(&mut bytes, crate::format::MAX_FRAME_ACCESSES as u64);
        varint::encode_u64(&mut bytes, crate::format::MAX_FRAME_ACCESSES as u64 * 4);
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_access(),
            Err(TraceError::Truncated {
                context: "frame payload"
            })
        ));
        // A count beyond the per-frame cap is rejected before any sizing.
        let mut bytes = Vec::new();
        TraceHeader::new(1, "T", 0).encode(&mut bytes);
        varint::encode_u64(&mut bytes, 1);
        varint::encode_u64(&mut bytes, crate::format::MAX_FRAME_ACCESSES as u64 + 1);
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_access(),
            Err(TraceError::Corrupt {
                context: "frame count"
            })
        ));
    }

    #[test]
    fn implausible_frame_lengths_are_corrupt() {
        let mut bytes = Vec::new();
        TraceHeader::new(1, "T", 0).encode(&mut bytes);
        bytes.push(1); // core 0
        bytes.push(1); // one access...
        bytes.push(100); // ...in 100 bytes: outside the 32-byte-per-access envelope
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(matches!(
            reader.next_access(),
            Err(TraceError::Corrupt {
                context: "frame length"
            })
        ));
    }
}
