//! Streaming LADT serialization.

use std::io::Write;

use lad_common::types::MemoryAccess;
use lad_trace::generator::WorkloadTrace;

use crate::error::TraceError;
use crate::format::{self, DeltaState, TraceHeader, DEFAULT_CHUNK_SIZE, MAX_FRAME_ACCESSES};
use crate::varint;

/// Writes a LADT stream incrementally over any [`std::io::Write`].
///
/// Accesses are buffered per core and flushed as a frame whenever a core
/// accumulates a full chunk, so memory stays O(`num_cores` × chunk size)
/// regardless of trace length.  [`TraceWriter::finish`] flushes the
/// remainders and writes the end marker; dropping a writer without calling
/// it produces a truncated stream (which readers report as such).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    header: TraceHeader,
    chunk_size: usize,
    pending: Vec<Vec<MemoryAccess>>,
    states: Vec<DeltaState>,
    accesses_written: u64,
    /// Reused payload encode buffer (no per-frame payload allocation).
    scratch: Vec<u8>,
    /// Reused buffer for the three frame-header varints, so a frame is two
    /// `write_all` calls and the payload bytes are never copied.
    frame_head: Vec<u8>,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a stream by writing the header.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] for a header spanning zero cores, or an I/O
    /// error from the sink.
    pub fn new(out: W, header: TraceHeader) -> Result<Self, TraceError> {
        Self::with_chunk_size(out, header, DEFAULT_CHUNK_SIZE)
    }

    /// [`TraceWriter::new`] with an explicit frame chunk size.
    ///
    /// # Errors
    ///
    /// Like [`TraceWriter::new`]; additionally rejects a zero chunk size
    /// and one beyond [`MAX_FRAME_ACCESSES`] (readers refuse such frames).
    pub fn with_chunk_size(
        mut out: W,
        header: TraceHeader,
        chunk_size: usize,
    ) -> Result<Self, TraceError> {
        if header.num_cores == 0 || header.num_cores > u16::MAX as usize {
            return Err(TraceError::Corrupt {
                context: "core count",
            });
        }
        if chunk_size == 0 || chunk_size > MAX_FRAME_ACCESSES {
            return Err(TraceError::Corrupt {
                context: "chunk size",
            });
        }
        let mut buf = Vec::with_capacity(32 + header.benchmark.len());
        header.encode(&mut buf);
        out.write_all(&buf)?;
        Ok(TraceWriter {
            pending: vec![Vec::new(); header.num_cores],
            states: vec![DeltaState::default(); header.num_cores],
            out,
            header,
            chunk_size,
            accesses_written: 0,
            scratch: Vec::new(),
            frame_head: Vec::with_capacity(3 * varint::MAX_VARINT_BYTES),
        })
    }

    /// The header this stream was started with.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Total accesses accepted so far (buffered or flushed).
    pub fn accesses_written(&self) -> u64 {
        self.accesses_written
    }

    /// Appends one access to its core's stream, flushing a frame when the
    /// core's buffer reaches the chunk size.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidCore`] when the access names a core outside the
    /// header's range, or an I/O error from the sink.
    pub fn write_access(&mut self, access: &MemoryAccess) -> Result<(), TraceError> {
        let core = access.core.index();
        if core >= self.header.num_cores {
            return Err(TraceError::InvalidCore {
                core,
                num_cores: self.header.num_cores,
            });
        }
        self.pending[core].push(*access);
        self.accesses_written += 1;
        if self.pending[core].len() >= self.chunk_size {
            self.flush_core(core)?;
        }
        Ok(())
    }

    /// Writes every access of a [`WorkloadTrace`], round-robining the cores
    /// chunk-by-chunk so that frames of different cores interleave and a
    /// streaming reader never buffers more than one chunk per core.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidCore`] when the trace spans more cores than the
    /// header declares, or an I/O error from the sink.
    pub fn write_workload(&mut self, trace: &WorkloadTrace) -> Result<(), TraceError> {
        let mut cursors = vec![0usize; trace.num_cores()];
        loop {
            let mut wrote_any = false;
            for core in 0..trace.num_cores() {
                let stream = trace.core_stream(lad_common::types::CoreId::new(core));
                let end = (cursors[core] + self.chunk_size).min(stream.len());
                for access in &stream[cursors[core]..end] {
                    self.write_access(access)?;
                }
                wrote_any |= end > cursors[core];
                cursors[core] = end;
            }
            if !wrote_any {
                return Ok(());
            }
        }
    }

    fn flush_core(&mut self, core: usize) -> Result<(), TraceError> {
        if self.pending[core].is_empty() {
            return Ok(());
        }
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        let state = &mut self.states[core];
        for access in &self.pending[core] {
            format::encode_access(&mut payload, state, access);
        }
        self.frame_head.clear();
        varint::encode_u64(&mut self.frame_head, core as u64 + 1);
        varint::encode_u64(&mut self.frame_head, self.pending[core].len() as u64);
        varint::encode_u64(&mut self.frame_head, payload.len() as u64);
        self.out.write_all(&self.frame_head)?;
        self.out.write_all(&payload)?;
        self.pending[core].clear();
        self.scratch = payload;
        Ok(())
    }

    /// Flushes every core's remaining accesses, writes the end marker and
    /// returns the underlying sink.
    ///
    /// # Errors
    ///
    /// An I/O error from the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        for core in 0..self.header.num_cores {
            self.flush_core(core)?;
        }
        self.out.write_all(&[0u8])?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Serializes a whole [`WorkloadTrace`] into a LADT byte vector (the
/// convenience entry point tests and the determinism suite use).
///
/// # Errors
///
/// Propagates writer errors; an in-memory sink can only fail on an invalid
/// header.
pub fn encode_workload(trace: &WorkloadTrace, seed: u64) -> Result<Vec<u8>, TraceError> {
    let header = TraceHeader::new(trace.num_cores(), trace.name(), seed);
    let mut writer = TraceWriter::new(Vec::new(), header)?;
    writer.write_workload(trace)?;
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::types::{Address, CoreId};

    #[test]
    fn writer_rejects_out_of_range_cores_and_bad_parameters() {
        let header = TraceHeader::new(2, "T", 0);
        let mut writer = TraceWriter::new(Vec::new(), header.clone()).unwrap();
        let access = MemoryAccess::read(CoreId::new(5), Address::new(0));
        assert!(matches!(
            writer.write_access(&access),
            Err(TraceError::InvalidCore {
                core: 5,
                num_cores: 2
            })
        ));
        assert!(TraceWriter::new(Vec::new(), TraceHeader::new(0, "T", 0)).is_err());
        assert!(TraceWriter::with_chunk_size(Vec::new(), header.clone(), 0).is_err());
        // Chunks beyond the per-frame cap would produce unreadable files.
        assert!(TraceWriter::with_chunk_size(Vec::new(), header, MAX_FRAME_ACCESSES + 1).is_err());
    }

    #[test]
    fn small_chunks_emit_interleaved_frames() {
        let header = TraceHeader::new(2, "T", 0);
        let mut writer = TraceWriter::with_chunk_size(Vec::new(), header, 2).unwrap();
        for i in 0..5u64 {
            for core in 0..2 {
                writer
                    .write_access(&MemoryAccess::read(CoreId::new(core), Address::new(i * 64)))
                    .unwrap();
            }
        }
        assert_eq!(writer.accesses_written(), 10);
        let bytes = writer.finish().unwrap();
        assert_eq!(
            *bytes.last().unwrap(),
            0,
            "stream must end with the end marker"
        );
    }
}
