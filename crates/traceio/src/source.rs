//! [`TraceSource`]: the streaming abstraction simulations consume traces
//! through.
//!
//! `Simulator::run` interleaves cores by their local clocks (always advance
//! the core that is furthest behind), so a source must be able to hand out
//! *per-core* streams — [`TraceSource::next_for_core`] — rather than one
//! flat sequence.  Three implementations cover the repo's scenario classes:
//!
//! * [`MemorySource`] — borrows an in-memory
//!   [`WorkloadTrace`](lad_trace::generator::WorkloadTrace); `Simulator::run`
//!   itself is a thin wrapper over it.
//! * [`GeneratorSource`] — materializes a synthetic trace from a
//!   [`TraceGenerator`](lad_trace::generator::TraceGenerator) on first use.
//! * [`ReaderSource`] — streams a LADT file in O(chunk-per-core) memory;
//!   [`FileSource`] is its `BufReader<File>` alias with a path-based
//!   constructor.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use lad_common::fault::{FaultInjector, FaultSite, FaultyRead};
use lad_common::types::{CoreId, MemoryAccess};
use lad_trace::generator::{TraceGenerator, WorkloadTrace};

use crate::error::TraceError;
use crate::reader::TraceReader;

/// A rewindable, per-core stream of memory accesses.
///
/// The contract simulations rely on:
///
/// * streams span cores `0..num_cores`;
/// * [`TraceSource::rewind`] restarts **every** core's stream from the
///   beginning (sources may be replayed many times, e.g. a profiling pass
///   followed by an execution pass, or one file under seven schemes);
/// * [`TraceSource::next_for_core`] yields one core's accesses in program
///   order, independently of how other cores' streams are consumed;
/// * [`TraceSource::next_access`] yields the whole trace in *some* complete
///   order that preserves each core's program order — order-insensitive
///   whole-trace passes (profiling, stats) should prefer it, because
///   sources can serve it in their cheapest order (file order for
///   [`ReaderSource`], which keeps memory O(chunk) instead of parking
///   other cores' accesses in queues).
pub trait TraceSource {
    /// Benchmark name, used to label the resulting report.
    fn name(&self) -> &str;

    /// Number of cores the trace spans.
    fn num_cores(&self) -> usize;

    /// Restarts every core's stream from the beginning.
    ///
    /// # Errors
    ///
    /// Source-specific (e.g. seek/reopen failures for file-backed sources).
    fn rewind(&mut self) -> Result<(), TraceError>;

    /// The next access of `core`'s stream, or `None` when it is exhausted.
    ///
    /// # Errors
    ///
    /// Source-specific decode or I/O failures.
    fn next_for_core(&mut self, core: CoreId) -> Result<Option<MemoryAccess>, TraceError>;

    /// The next access of the trace in the source's cheapest complete
    /// order (each core's stream still arrives in program order), or
    /// `None` when every stream is exhausted.  Do not interleave with
    /// [`TraceSource::next_for_core`] in the same pass: the combined order
    /// is unspecified (no access is ever lost or duplicated, though).
    ///
    /// The default drains cores in index order — correct for any source;
    /// streaming sources override it with their native order.
    ///
    /// # Errors
    ///
    /// Source-specific decode or I/O failures.
    fn next_access(&mut self) -> Result<Option<MemoryAccess>, TraceError> {
        for core in 0..self.num_cores() {
            if let Some(access) = self.next_for_core(CoreId::new(core))? {
                return Ok(Some(access));
            }
        }
        Ok(None)
    }
}

/// [`TraceSource`] over a borrowed in-memory [`WorkloadTrace`].
#[derive(Debug)]
pub struct MemorySource<'a> {
    trace: &'a WorkloadTrace,
    cursors: Vec<usize>,
}

impl<'a> MemorySource<'a> {
    /// Wraps a trace; the first pass needs no explicit `rewind`.
    pub fn new(trace: &'a WorkloadTrace) -> Self {
        MemorySource {
            cursors: vec![0; trace.num_cores()],
            trace,
        }
    }
}

impl<'a> From<&'a WorkloadTrace> for MemorySource<'a> {
    fn from(trace: &'a WorkloadTrace) -> Self {
        MemorySource::new(trace)
    }
}

impl TraceSource for MemorySource<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn num_cores(&self) -> usize {
        self.trace.num_cores()
    }

    fn rewind(&mut self) -> Result<(), TraceError> {
        self.cursors.iter_mut().for_each(|c| *c = 0);
        Ok(())
    }

    fn next_for_core(&mut self, core: CoreId) -> Result<Option<MemoryAccess>, TraceError> {
        let stream = self.trace.core_stream(core);
        let cursor = &mut self.cursors[core.index()];
        let access = stream.get(*cursor).copied();
        if access.is_some() {
            *cursor += 1;
        }
        Ok(access)
    }
}

/// [`TraceSource`] that materializes a synthetic trace from a
/// [`TraceGenerator`] on first use (generation is deterministic from the
/// seed, so rewinding replays the identical trace without regenerating).
#[derive(Debug)]
pub struct GeneratorSource {
    generator: TraceGenerator,
    num_cores: usize,
    accesses_per_core: usize,
    seed: u64,
    trace: Option<WorkloadTrace>,
    cursors: Vec<usize>,
}

impl GeneratorSource {
    /// Creates a source that will generate `accesses_per_core` accesses for
    /// each of `num_cores` cores from `seed`.
    pub fn new(
        generator: TraceGenerator,
        num_cores: usize,
        accesses_per_core: usize,
        seed: u64,
    ) -> Self {
        GeneratorSource {
            generator,
            num_cores,
            accesses_per_core,
            seed,
            trace: None,
            cursors: vec![0; num_cores],
        }
    }

    fn trace(&mut self) -> &WorkloadTrace {
        if self.trace.is_none() {
            self.trace = Some(self.generator.generate(
                self.num_cores,
                self.accesses_per_core,
                self.seed,
            ));
        }
        match self.trace.as_ref() {
            Some(trace) => trace,
            None => unreachable!("just generated"),
        }
    }
}

impl TraceSource for GeneratorSource {
    fn name(&self) -> &str {
        self.generator.profile().name
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn rewind(&mut self) -> Result<(), TraceError> {
        self.cursors.iter_mut().for_each(|c| *c = 0);
        Ok(())
    }

    fn next_for_core(&mut self, core: CoreId) -> Result<Option<MemoryAccess>, TraceError> {
        self.trace();
        let Some(trace) = self.trace.as_ref() else {
            unreachable!("materialized above");
        };
        let stream = trace.core_stream(core);
        let cursor = &mut self.cursors[core.index()];
        let access = stream.get(*cursor).copied();
        if access.is_some() {
            *cursor += 1;
        }
        Ok(access)
    }
}

/// Streaming [`TraceSource`] over a LADT stream.
///
/// Frames are decoded in file order; accesses of cores other than the one
/// being asked for wait in per-core queues.  With chunk-interleaved files
/// (what [`TraceWriter::write_workload`](crate::writer::TraceWriter) emits)
/// the queues stay bounded by one chunk per core, so replay runs in
/// O(`num_cores` × chunk) memory however large the file is.
#[derive(Debug)]
pub struct ReaderSource<R: Read + Seek> {
    name: String,
    num_cores: usize,
    reader: Option<TraceReader<R>>,
    queues: Vec<VecDeque<MemoryAccess>>,
    exhausted: bool,
}

impl<R: Read + Seek> ReaderSource<R> {
    /// Opens a source over a seekable stream (the header is read
    /// immediately).
    ///
    /// # Errors
    ///
    /// Header decode errors.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let reader = TraceReader::new(input)?;
        let header = reader.header();
        Ok(ReaderSource {
            name: header.benchmark.clone(),
            num_cores: header.num_cores,
            queues: vec![VecDeque::new(); header.num_cores],
            reader: Some(reader),
            exhausted: false,
        })
    }

    /// Accesses currently parked in per-core queues (exposed so tests can
    /// assert the skew bound of interleaved files).
    pub fn queued_accesses(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl<R: Read + Seek> TraceSource for ReaderSource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// A failed rewind (seek or header re-read error) leaves the source
    /// *poisoned*: the stream position is unknown, so every subsequent call
    /// returns [`TraceError::SourcePoisoned`] instead of decoding garbage.
    fn rewind(&mut self) -> Result<(), TraceError> {
        let Some(reader) = self.reader.take() else {
            return Err(TraceError::SourcePoisoned);
        };
        // Drop parked pre-rewind accesses up front so a failed seek cannot
        // leave them to be served against a half-restarted stream.
        self.queues.iter_mut().for_each(VecDeque::clear);
        self.exhausted = false;
        let mut input = reader.into_inner();
        input.seek(SeekFrom::Start(0))?;
        self.reader = Some(TraceReader::new(input)?);
        Ok(())
    }

    fn next_for_core(&mut self, core: CoreId) -> Result<Option<MemoryAccess>, TraceError> {
        loop {
            if let Some(access) = self.queues[core.index()].pop_front() {
                return Ok(Some(access));
            }
            if self.exhausted {
                return Ok(None);
            }
            let Some(reader) = self.reader.as_mut() else {
                return Err(TraceError::SourcePoisoned);
            };
            match reader.next_access()? {
                Some(access) => self.queues[access.core.index()].push_back(access),
                None => self.exhausted = true,
            }
        }
    }

    /// File order: straight off the underlying reader, so a whole-trace
    /// pass never parks accesses in per-core queues and memory stays
    /// O(chunk) regardless of trace size.
    fn next_access(&mut self) -> Result<Option<MemoryAccess>, TraceError> {
        // Serve anything a next_for_core call already parked first, so
        // mixed usage still yields every access exactly once.
        if let Some(queue) = self.queues.iter_mut().find(|q| !q.is_empty()) {
            return Ok(queue.pop_front());
        }
        if self.exhausted {
            return Ok(None);
        }
        let Some(reader) = self.reader.as_mut() else {
            return Err(TraceError::SourcePoisoned);
        };
        match reader.next_access()? {
            Some(access) => Ok(Some(access)),
            None => {
                self.exhausted = true;
                Ok(None)
            }
        }
    }
}

/// A [`ReaderSource`] over a buffered file.
pub type FileSource = ReaderSource<BufReader<File>>;

impl FileSource {
    /// Opens a `.ladt` file for streaming replay.
    ///
    /// # Errors
    ///
    /// File-open and header decode errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        ReaderSource::new(BufReader::new(File::open(path)?))
    }
}

/// A [`FileSource`] with a fault-injection seam at
/// [`FaultSite::TraceRead`]: every read of the underlying file consults the
/// injector, so seeded plans can surface short reads, `EINTR`, dropped
/// streams and spurious EOF mid-replay.  With a disarmed injector this is
/// a [`FileSource`] plus one branch per read.
pub type FaultyFileSource = ReaderSource<FaultyRead<BufReader<File>>>;

impl FaultyFileSource {
    /// Opens a `.ladt` file for streaming replay with `injector` armed on
    /// the read path.
    ///
    /// # Errors
    ///
    /// File-open and header decode errors (injected faults can surface as
    /// either).
    pub fn open_faulty(
        path: impl AsRef<Path>,
        injector: FaultInjector,
    ) -> Result<Self, TraceError> {
        ReaderSource::new(FaultyRead::new(
            BufReader::new(File::open(path)?),
            FaultSite::TraceRead,
            injector,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::encode_workload;
    use lad_trace::benchmarks::Benchmark;

    fn trace() -> WorkloadTrace {
        TraceGenerator::new(Benchmark::Dedup.profile()).generate(4, 60, 11)
    }

    fn drain(source: &mut impl TraceSource, core: usize) -> Vec<MemoryAccess> {
        let mut out = Vec::new();
        while let Some(access) = source.next_for_core(CoreId::new(core)).unwrap() {
            out.push(access);
        }
        out
    }

    #[test]
    fn memory_source_replays_streams_and_rewinds() {
        let trace = trace();
        let mut source = MemorySource::from(&trace);
        assert_eq!(source.name(), trace.name());
        assert_eq!(source.num_cores(), 4);
        let first = drain(&mut source, 2);
        assert_eq!(first.as_slice(), trace.core_stream(CoreId::new(2)));
        assert!(source.next_for_core(CoreId::new(2)).unwrap().is_none());
        source.rewind().unwrap();
        assert_eq!(drain(&mut source, 2), first);
    }

    #[test]
    fn generator_source_matches_direct_generation() {
        let generator = TraceGenerator::new(Benchmark::Dedup.profile());
        let direct = generator.generate(4, 60, 11);
        let mut source = GeneratorSource::new(generator, 4, 60, 11);
        assert_eq!(source.name(), "DEDUP");
        for core in 0..4 {
            assert_eq!(
                drain(&mut source, core).as_slice(),
                direct.core_stream(CoreId::new(core))
            );
        }
        source.rewind().unwrap();
        assert_eq!(
            drain(&mut source, 0).as_slice(),
            direct.core_stream(CoreId::new(0))
        );
    }

    #[test]
    fn failed_rewind_poisons_the_source_instead_of_panicking() {
        use std::io::{Read, Seek, SeekFrom};

        /// Seekable stream whose seeks fail after the first `allowed`.
        struct FlakySeek {
            inner: std::io::Cursor<Vec<u8>>,
            seeks_left: usize,
        }
        impl Read for FlakySeek {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.inner.read(buf)
            }
        }
        impl Seek for FlakySeek {
            fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
                if self.seeks_left == 0 {
                    return Err(std::io::Error::other("seek lost"));
                }
                self.seeks_left -= 1;
                self.inner.seek(pos)
            }
        }

        let trace = trace();
        let bytes = encode_workload(&trace, 11).unwrap();
        let mut source = ReaderSource::new(FlakySeek {
            inner: std::io::Cursor::new(bytes),
            seeks_left: 0,
        })
        .unwrap();
        assert!(source.next_for_core(CoreId::new(0)).unwrap().is_some());
        // The failed seek surfaces as the I/O error it is...
        assert!(matches!(source.rewind(), Err(TraceError::Io(_))));
        // ...and every later call reports the poisoned state, never panics.
        assert!(matches!(
            source.next_for_core(CoreId::new(0)),
            Err(TraceError::SourcePoisoned)
        ));
        assert!(matches!(
            source.next_access(),
            Err(TraceError::SourcePoisoned)
        ));
        assert!(matches!(source.rewind(), Err(TraceError::SourcePoisoned)));
    }

    #[test]
    fn faulty_file_source_absorbs_benign_faults_byte_identically() {
        use lad_common::fault::FaultPlan;

        let trace = trace();
        let bytes = encode_workload(&trace, 11).unwrap();
        let dir = std::env::temp_dir().join(format!("ladt-faulty-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dedup.ladt");
        std::fs::write(&path, &bytes).unwrap();

        // Short reads and EINTR are legal `Read` behaviour; the decode
        // layer must absorb them without changing a single access.
        let plan = FaultPlan::parse(
            "trace-read:1:interrupt;trace-read:2:short;trace-read:3:short;trace-read:5:interrupt",
        )
        .unwrap();
        let mut faulty = FaultyFileSource::open_faulty(&path, FaultInjector::armed(plan)).unwrap();
        let mut clean = FileSource::open(&path).unwrap();
        for core in 0..4 {
            assert_eq!(drain(&mut faulty, core), drain(&mut clean, core));
        }

        // A dropped stream surfaces as a typed I/O error, never a panic —
        // whether it fires during the header decode at open or mid-stream.
        let plan = FaultPlan::parse("trace-read:20:drop").unwrap();
        let mut saw_error = false;
        match FaultyFileSource::open_faulty(&path, FaultInjector::armed(plan)) {
            Err(TraceError::Io(_)) => saw_error = true,
            Err(other) => panic!("unexpected error class at open: {other:?}"),
            Ok(mut dropped) => {
                'cores: for core in 0..4 {
                    loop {
                        match dropped.next_for_core(CoreId::new(core)) {
                            Ok(Some(_)) => {}
                            Ok(None) => break,
                            Err(TraceError::Io(_)) => {
                                saw_error = true;
                                break 'cores;
                            }
                            Err(other) => panic!("unexpected error class: {other:?}"),
                        }
                    }
                }
            }
        }
        assert!(saw_error, "the injected drop must surface");

        // Disarmed, the faulty alias behaves exactly like FileSource.
        let mut disarmed = FaultyFileSource::open_faulty(&path, FaultInjector::disarmed()).unwrap();
        let mut clean = FileSource::open(&path).unwrap();
        for core in 0..4 {
            assert_eq!(drain(&mut disarmed, core), drain(&mut clean, core));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_source_streams_a_roundtripped_file_per_core() {
        let trace = trace();
        let bytes = encode_workload(&trace, 11).unwrap();
        let mut source = ReaderSource::new(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(source.name(), trace.name());
        // Drain cores in reverse order to force queueing.
        for core in (0..4).rev() {
            assert_eq!(
                drain(&mut source, core).as_slice(),
                trace.core_stream(CoreId::new(core))
            );
        }
        // Rewind and do it again in forward order.
        source.rewind().unwrap();
        for core in 0..4 {
            assert_eq!(
                drain(&mut source, core).as_slice(),
                trace.core_stream(CoreId::new(core))
            );
        }
        assert_eq!(source.queued_accesses(), 0);
    }
}
