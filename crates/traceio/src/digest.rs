//! Content digests of traces: a streaming FNV-1a 64 over *decoded* accesses.
//!
//! The digest identifies what a trace **means**, not how it is stored: it
//! covers the core count, the benchmark label and every decoded access in
//! per-core program order, but neither the container's chunking nor the
//! header's provenance seed.  Re-encoding a trace with a different chunk
//! size (or re-recording it under a different seed annotation) therefore
//! preserves the digest, which is exactly the property a content-addressed
//! result cache needs: two files that replay identically share a key.
//!
//! Cross-core interleaving is canonicalized by hashing each core's stream
//! into its own FNV lane and folding the lanes together in core order, so
//! any complete traversal order (file order, core-major order, ...) yields
//! the same digest.

use std::io::{Read, Seek};
use std::path::Path;

use lad_common::types::{MemOp, MemoryAccess};
use lad_trace::generator::WorkloadTrace;

use crate::error::TraceError;
use crate::source::{ReaderSource, TraceSource};

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut hash = hash;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 64-bit content digest of a trace.
///
/// Displayed (and conventionally stored) as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceDigest(u64);

impl TraceDigest {
    /// The raw 64-bit digest value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The canonical 16-hex-digit rendering (same as [`std::fmt::Display`]).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the canonical hex rendering back into a digest.
    pub fn parse_hex(text: &str) -> Option<TraceDigest> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(TraceDigest)
    }
}

impl std::fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Streaming digest accumulator.
///
/// Feed every access of a trace (in any complete order that preserves each
/// core's program order — the [`TraceSource`] contract) and call
/// [`DigestBuilder::finish`].
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    header: u64,
    lanes: Vec<u64>,
    counts: Vec<u64>,
}

impl DigestBuilder {
    /// Starts a digest over a trace of `num_cores` cores labelled
    /// `benchmark`.
    pub fn new(num_cores: usize, benchmark: &str) -> Self {
        let mut header = fnv1a(FNV_OFFSET_BASIS, &(num_cores as u64).to_le_bytes());
        header = fnv1a(header, &(benchmark.len() as u64).to_le_bytes());
        header = fnv1a(header, benchmark.as_bytes());
        DigestBuilder {
            header,
            lanes: vec![FNV_OFFSET_BASIS; num_cores],
            counts: vec![0; num_cores],
        }
    }

    /// Absorbs one decoded access into its core's lane.
    ///
    /// # Panics
    ///
    /// Panics if the access names a core outside the range the builder was
    /// created for (sources validate cores before handing accesses out).
    pub fn record(&mut self, access: &MemoryAccess) {
        let core = access.core.index();
        assert!(
            core < self.lanes.len(),
            "access names core {core} of a {}-core digest",
            self.lanes.len()
        );
        let op = match access.op {
            MemOp::Read => 0u8,
            MemOp::Write => 1,
            MemOp::InstructionFetch => 2,
        };
        let mut lane = fnv1a(self.lanes[core], &access.address.value().to_le_bytes());
        lane = fnv1a(lane, &[op, access.class as u8]);
        lane = fnv1a(lane, &access.compute_cycles.to_le_bytes());
        self.lanes[core] = lane;
        self.counts[core] += 1;
    }

    /// Total accesses absorbed so far.
    pub fn accesses(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds the per-core lanes (in core order) into the final digest.
    pub fn finish(&self) -> TraceDigest {
        let mut hash = self.header;
        for (lane, count) in self.lanes.iter().zip(&self.counts) {
            hash = fnv1a(hash, &count.to_le_bytes());
            hash = fnv1a(hash, &lane.to_le_bytes());
        }
        TraceDigest(hash)
    }
}

/// Digests an in-memory workload trace.
pub fn digest_workload(trace: &WorkloadTrace) -> TraceDigest {
    let mut builder = DigestBuilder::new(trace.num_cores(), trace.name());
    for core in 0..trace.num_cores() {
        for access in trace.core_stream(lad_common::types::CoreId::new(core)) {
            builder.record(access);
        }
    }
    builder.finish()
}

/// Digests a whole [`TraceSource`] and rewinds it, so the source can go
/// straight into a replay afterwards.
///
/// # Errors
///
/// Decode/I/O errors from the source (including rewind failures).
pub fn digest_source(source: &mut dyn TraceSource) -> Result<TraceDigest, TraceError> {
    let name = source.name().to_string();
    let mut builder = DigestBuilder::new(source.num_cores(), &name);
    while let Some(access) = source.next_access()? {
        builder.record(&access);
    }
    source.rewind()?;
    Ok(builder.finish())
}

/// Digests a LADT stream.
///
/// # Errors
///
/// Header/frame decode errors and I/O errors.
pub fn digest_reader<R: Read + Seek>(input: R) -> Result<TraceDigest, TraceError> {
    let mut source = ReaderSource::new(input)?;
    digest_source(&mut source)
}

/// Digests a `.ladt` file.
///
/// # Errors
///
/// File-open errors plus everything [`digest_reader`] can report.
pub fn digest_file(path: impl AsRef<Path>) -> Result<TraceDigest, TraceError> {
    let mut source = crate::source::FileSource::open(path)?;
    digest_source(&mut source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceHeader;
    use crate::writer::{encode_workload, TraceWriter};
    use lad_trace::benchmarks::Benchmark;
    use lad_trace::generator::TraceGenerator;

    fn trace() -> WorkloadTrace {
        TraceGenerator::new(Benchmark::Barnes.profile()).generate(4, 80, 13)
    }

    fn encode_with_chunk(trace: &WorkloadTrace, seed: u64, chunk: usize) -> Vec<u8> {
        let header = TraceHeader::new(trace.num_cores(), trace.name(), seed);
        let mut writer = TraceWriter::with_chunk_size(Vec::new(), header, chunk).unwrap();
        writer.write_workload(trace).unwrap();
        writer.finish().unwrap()
    }

    #[test]
    fn reencoding_preserves_the_digest() {
        let trace = trace();
        let reference = digest_workload(&trace);
        // Different chunk sizes interleave frames differently, and the seed
        // annotation is provenance only: none of it may move the digest.
        for (chunk, seed) in [(3usize, 13u64), (7, 13), (4096, 99), (1, 0)] {
            let bytes = encode_with_chunk(&trace, seed, chunk);
            let digest = digest_reader(std::io::Cursor::new(bytes)).unwrap();
            assert_eq!(digest, reference, "chunk={chunk} seed={seed}");
        }
    }

    #[test]
    fn digest_is_sensitive_to_content_cores_and_name() {
        let base = trace();
        let reference = digest_workload(&base);
        // One more access per core.
        let longer = TraceGenerator::new(Benchmark::Barnes.profile()).generate(4, 81, 13);
        assert_ne!(digest_workload(&longer), reference);
        // Same generator parameters, different benchmark (profile + label).
        let renamed = TraceGenerator::new(Benchmark::Dedup.profile()).generate(4, 80, 13);
        assert_ne!(digest_workload(&renamed), reference);
        // Different core count.
        let wider = TraceGenerator::new(Benchmark::Barnes.profile()).generate(8, 80, 13);
        assert_ne!(digest_workload(&wider), reference);
    }

    #[test]
    fn digest_source_rewinds_for_replay() {
        let trace = trace();
        let bytes = encode_workload(&trace, 13).unwrap();
        let mut source = ReaderSource::new(std::io::Cursor::new(bytes)).unwrap();
        let digest = digest_source(&mut source).unwrap();
        assert_eq!(digest, digest_workload(&trace));
        // The source starts over cleanly: digesting again agrees.
        assert_eq!(digest_source(&mut source).unwrap(), digest);
    }

    #[test]
    fn hex_roundtrip_and_display() {
        let digest = digest_workload(&trace());
        let hex = digest.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(hex, digest.to_string());
        assert_eq!(TraceDigest::parse_hex(&hex), Some(digest));
        assert_eq!(TraceDigest::parse_hex("xyz"), None);
        assert_eq!(TraceDigest::parse_hex(""), None);
    }

    #[test]
    fn truncated_streams_error_instead_of_digesting() {
        let mut bytes = encode_workload(&trace(), 13).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(digest_reader(std::io::Cursor::new(bytes)).is_err());
    }
}
