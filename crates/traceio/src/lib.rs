//! Trace capture & replay: the LADT binary trace format and the streaming
//! [`TraceSource`] abstraction.
//!
//! The in-memory [`WorkloadTrace`](lad_trace::generator::WorkloadTrace)
//! bounds workloads by RAM and limits them to the built-in synthetic
//! generator.  This crate adds a portable on-disk form — **LADT** (magic +
//! version + header, per-core chunked frames, varint + zigzag delta-encoded
//! addresses and compute gaps; see [`format`] for the byte-level spec) —
//! with streaming [`TraceWriter`]/[`TraceReader`] over any
//! `std::io::Write`/`Read`, so traces replay byte-for-byte reproducibly
//! across machines in O(chunk) memory instead of O(trace).
//!
//! Simulations consume any trace through the [`TraceSource`] trait
//! (`Simulator::run_source` in `lad-sim`): [`MemorySource`] wraps in-memory
//! traces, [`GeneratorSource`] wraps the synthetic generator and
//! [`FileSource`] streams `.ladt` files.  [`text`] converts the common
//! one-access-per-line interchange format, and [`suite`] records whole
//! benchmark suites to directories of `.ladt` files.  [`digest`] computes
//! chunking-independent FNV-1a 64 content digests over decoded accesses —
//! the content-addressed key of the experiment service's result cache.
//!
//! # Example
//!
//! ```
//! use lad_traceio::{encode_workload, ReaderSource, TraceSource};
//! use lad_trace::benchmarks::Benchmark;
//! use lad_trace::generator::TraceGenerator;
//! use lad_common::types::CoreId;
//!
//! let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(2, 50, 7);
//! let bytes = encode_workload(&trace, 7).unwrap();
//! let mut source = ReaderSource::new(std::io::Cursor::new(bytes)).unwrap();
//! assert_eq!(source.name(), "BARNES");
//! let first = source.next_for_core(CoreId::new(0)).unwrap().unwrap();
//! assert_eq!(first, trace.core_stream(CoreId::new(0))[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod error;
pub mod format;
pub mod reader;
pub mod source;
pub mod suite;
pub mod text;
pub mod varint;
pub mod writer;

pub use digest::{digest_file, digest_source, digest_workload, DigestBuilder, TraceDigest};
pub use error::TraceError;
pub use format::{TraceHeader, DEFAULT_CHUNK_SIZE, FORMAT_VERSION, MAGIC, MAX_FRAME_ACCESSES};
pub use reader::{decode_all, TraceReader};
pub use source::{FileSource, GeneratorSource, MemorySource, ReaderSource, TraceSource};
pub use suite::{record_benchmark, record_suite, RecordedTrace};
pub use writer::{encode_workload, TraceWriter};
