//! Recording whole benchmark suites to `.ladt` files — the file-backed
//! counterpart of [`BenchmarkSuite`]'s in-memory trace generation.

use std::io::BufWriter;
use std::path::{Path, PathBuf};

use lad_common::fault::{FaultInjector, FaultSite, FaultyWrite};
use lad_trace::benchmarks::Benchmark;
use lad_trace::suite::BenchmarkSuite;

use crate::error::TraceError;
use crate::format::TraceHeader;
use crate::writer::TraceWriter;

/// One benchmark of a recorded suite: its label and where its `.ladt` file
/// landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedTrace {
    /// The benchmark's paper label (e.g. `"BARNES"`).
    pub benchmark: String,
    /// Path of the recorded `.ladt` file.
    pub path: PathBuf,
}

/// The file name a benchmark records to: its label, lowercased, with every
/// non-alphanumeric run collapsed to `-`, plus the `.ladt` extension
/// (`"OCEAN-C"` → `ocean-c.ladt`).
pub fn trace_file_name(label: &str) -> String {
    let mut name = String::with_capacity(label.len() + 5);
    let mut last_dash = true; // suppress a leading dash
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            name.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            name.push('-');
            last_dash = true;
        }
    }
    if name.ends_with('-') {
        name.pop();
    }
    name.push_str(".ladt");
    name
}

/// Records one benchmark of a suite to `<dir>/<label>.ladt` for a machine
/// of `num_cores` cores.
///
/// # Errors
///
/// File-creation or write failures.
pub fn record_benchmark(
    suite: &BenchmarkSuite,
    benchmark: Benchmark,
    num_cores: usize,
    dir: &Path,
) -> Result<RecordedTrace, TraceError> {
    record_benchmark_faulty(suite, benchmark, num_cores, dir, &FaultInjector::disarmed())
}

/// [`record_benchmark`] with a fault-injection seam at
/// [`FaultSite::TraceWrite`]: every write of the `.ladt` stream consults
/// `injector`, so seeded plans can exercise short writes and `EINTR` on the
/// recording path.  Disarmed, this is [`record_benchmark`] plus one branch
/// per write.
///
/// The stream lands via [`lad_common::fs::atomic_stream`] (temp file +
/// `fsync` + rename), so a crash or injected failure mid-recording never
/// leaves a torn `.ladt` at the destination.
///
/// # Errors
///
/// File-creation or write failures (injected faults surface as the latter).
pub fn record_benchmark_faulty(
    suite: &BenchmarkSuite,
    benchmark: Benchmark,
    num_cores: usize,
    dir: &Path,
    injector: &FaultInjector,
) -> Result<RecordedTrace, TraceError> {
    let trace = suite.trace_for(benchmark, num_cores);
    let seed = suite.seed() ^ benchmark as u64;
    let path = dir.join(trace_file_name(benchmark.label()));
    lad_common::fs::atomic_stream(&path, |file| {
        let faulty = FaultyWrite::new(
            BufWriter::new(file),
            FaultSite::TraceWrite,
            injector.clone(),
        );
        let header = TraceHeader::new(trace.num_cores(), trace.name(), seed);
        (|| -> Result<(), TraceError> {
            let mut writer = TraceWriter::new(faulty, header)?;
            writer.write_workload(&trace)?;
            writer.finish()?;
            Ok(())
        })()
        .map_err(std::io::Error::other)
    })?;
    Ok(RecordedTrace {
        benchmark: benchmark.label().to_string(),
        path,
    })
}

/// Records every benchmark of a suite into `dir` (created if absent).
/// Returns one [`RecordedTrace`] per benchmark, in suite order.
///
/// # Errors
///
/// Directory-creation, file-creation or write failures.
pub fn record_suite(
    suite: &BenchmarkSuite,
    num_cores: usize,
    dir: &Path,
) -> Result<Vec<RecordedTrace>, TraceError> {
    std::fs::create_dir_all(dir)?;
    suite
        .benchmarks()
        .iter()
        .map(|&benchmark| record_benchmark(suite, benchmark, num_cores, dir))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileSource, TraceSource};
    use lad_common::types::CoreId;

    #[test]
    fn file_names_are_filesystem_safe() {
        assert_eq!(trace_file_name("BARNES"), "barnes.ladt");
        assert_eq!(trace_file_name("OCEAN-C"), "ocean-c.ladt");
        assert_eq!(trace_file_name("WATER-NSQ"), "water-nsq.ladt");
        assert_eq!(trace_file_name("a b/c"), "a-b-c.ladt");
        assert_eq!(trace_file_name("--X--"), "x.ladt");
    }

    #[test]
    fn recorded_suite_files_replay_the_generated_streams() {
        let dir = std::env::temp_dir().join(format!("ladt-suite-test-{}", std::process::id()));
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup, Benchmark::Barnes], 40, 9);
        let recorded = record_suite(&suite, 4, &dir).unwrap();
        assert_eq!(recorded.len(), 2);
        assert_eq!(recorded[0].benchmark, "DEDUP");
        assert!(recorded[0].path.ends_with("dedup.ladt"));
        for entry in &recorded {
            let benchmark = suite
                .benchmarks()
                .iter()
                .copied()
                .find(|b| b.label() == entry.benchmark)
                .unwrap();
            let expected = suite.trace_for(benchmark, 4);
            let mut source = FileSource::open(&entry.path).unwrap();
            assert_eq!(source.name(), entry.benchmark);
            assert_eq!(source.num_cores(), 4);
            for core in 0..4 {
                let mut stream = Vec::new();
                while let Some(access) = source.next_for_core(CoreId::new(core)).unwrap() {
                    stream.push(access);
                }
                assert_eq!(stream.as_slice(), expected.core_stream(CoreId::new(core)));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_recording_absorbs_benign_faults_byte_identically() {
        use lad_common::fault::{FaultInjector, FaultPlan};

        let dir = std::env::temp_dir().join(format!("ladt-suite-faulty-{}", std::process::id()));
        let clean_dir = dir.join("clean");
        let faulty_dir = dir.join("faulty");
        std::fs::create_dir_all(&clean_dir).unwrap();
        std::fs::create_dir_all(&faulty_dir).unwrap();
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup], 40, 9);

        let clean = record_benchmark(&suite, Benchmark::Dedup, 4, &clean_dir).unwrap();
        let plan =
            FaultPlan::parse("trace-write:1:interrupt;trace-write:2:short;trace-write:4:short")
                .unwrap();
        let faulty = record_benchmark_faulty(
            &suite,
            Benchmark::Dedup,
            4,
            &faulty_dir,
            &FaultInjector::armed(plan),
        )
        .unwrap();
        assert_eq!(
            std::fs::read(&clean.path).unwrap(),
            std::fs::read(&faulty.path).unwrap(),
            "short writes and EINTR must not change the recorded bytes"
        );

        // A hard failure surfaces as an error, never a panic.
        let plan = FaultPlan::parse("trace-write:2:drop").unwrap();
        let err = record_benchmark_faulty(
            &suite,
            Benchmark::Dedup,
            4,
            &faulty_dir,
            &FaultInjector::armed(plan),
        );
        assert!(matches!(err, Err(TraceError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
