//! Plain-text trace interchange.
//!
//! External simulators and tracers commonly dump one access per line; this
//! module converts that interchange form to and from LADT.  The line format
//! is
//!
//! ```text
//! core address is_write
//! ```
//!
//! where `core` is a decimal core index, `address` is a decimal or
//! `0x`-prefixed hexadecimal byte address, and `is_write` is `0`/`1` (or
//! `r`/`w`, case-insensitive).  Blank lines and lines starting with `#` are
//! skipped.  Imported accesses carry no compute gap and are classed as
//! [`DataClass::Private`] (external traces carry no sharing ground truth;
//! the classification only feeds characterization plots, never the
//! replication protocol).  The export direction is lossy the same way:
//! instruction fetches flatten to reads and compute gaps are dropped.

use std::io::{BufRead, Write};

use lad_common::types::{Address, CoreId, DataClass, MemOp, MemoryAccess};

use crate::error::TraceError;
use crate::format::TraceHeader;
use crate::reader::TraceReader;
use crate::writer::TraceWriter;

/// Parses one text line into `(core, address, is_write)`.
fn parse_line(line: &str, number: usize) -> Result<Option<(usize, u64, bool)>, TraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let err = |message: String| TraceError::Text {
        line: number,
        message,
    };
    let mut fields = line.split_whitespace();
    let core = fields
        .next()
        .ok_or_else(|| err("missing core field".into()))?
        .parse::<usize>()
        .map_err(|_| err("core must be a decimal integer".into()))?;
    let address_text = fields
        .next()
        .ok_or_else(|| err("missing address field".into()))?;
    let address = match address_text
        .strip_prefix("0x")
        .or_else(|| address_text.strip_prefix("0X"))
    {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => address_text.parse::<u64>(),
    }
    .map_err(|_| err(format!("bad address {address_text:?}")))?;
    let is_write = match fields
        .next()
        .ok_or_else(|| err("missing is_write field".into()))?
    {
        "0" | "r" | "R" => false,
        "1" | "w" | "W" => true,
        other => return Err(err(format!("bad is_write {other:?} (expected 0/1/r/w)"))),
    };
    if let Some(extra) = fields.next() {
        return Err(err(format!("unexpected trailing field {extra:?}")));
    }
    Ok(Some((core, address, is_write)))
}

/// Scans a text trace and returns `1 + max core index` (the core count a
/// conversion needs for its header).
///
/// # Errors
///
/// Parse errors, or [`TraceError::Corrupt`] for an empty trace.
pub fn scan_text_cores(input: impl BufRead) -> Result<usize, TraceError> {
    let mut max_core: Option<usize> = None;
    for (i, line) in input.lines().enumerate() {
        if let Some((core, _, _)) = parse_line(&line?, i + 1)? {
            max_core = Some(max_core.map_or(core, |m| m.max(core)));
        }
    }
    match max_core {
        Some(max) => Ok(max + 1),
        None => Err(TraceError::Corrupt {
            context: "empty text trace",
        }),
    }
}

/// Converts a text trace to LADT, streaming line-by-line.
///
/// `num_cores` must cover every core index in the input (use
/// [`scan_text_cores`] when it is not known up front).  Returns the number
/// of accesses converted.
///
/// # Errors
///
/// Parse errors, [`TraceError::InvalidCore`] for an access outside
/// `num_cores`, or sink I/O errors.
pub fn text_to_ladt(
    input: impl BufRead,
    output: impl Write,
    header: TraceHeader,
) -> Result<u64, TraceError> {
    let mut writer = TraceWriter::new(output, header)?;
    for (i, line) in input.lines().enumerate() {
        let Some((core, address, is_write)) = parse_line(&line?, i + 1)? else {
            continue;
        };
        if core >= writer.header().num_cores {
            return Err(TraceError::InvalidCore {
                core,
                num_cores: writer.header().num_cores,
            });
        }
        let access = MemoryAccess {
            core: CoreId::new(core),
            address: Address::new(address),
            op: if is_write { MemOp::Write } else { MemOp::Read },
            compute_cycles: 0,
            class: DataClass::Private,
        };
        writer.write_access(&access)?;
    }
    let written = writer.accesses_written();
    writer.finish()?;
    Ok(written)
}

/// Converts a LADT stream to the text form, streaming access-by-access.
/// Returns the number of accesses written.
///
/// # Errors
///
/// Reader decode errors or sink I/O errors.
pub fn ladt_to_text(input: impl std::io::Read, mut output: impl Write) -> Result<u64, TraceError> {
    let mut reader = TraceReader::new(input)?;
    let header = reader.header().clone();
    writeln!(
        output,
        "# LADT export: benchmark {} ({} cores, seed {})",
        header.benchmark, header.num_cores, header.seed
    )?;
    writeln!(output, "# core address is_write")?;
    let mut written = 0u64;
    while let Some(access) = reader.next_access()? {
        writeln!(
            output,
            "{} 0x{:x} {}",
            access.core.index(),
            access.address.value(),
            u8::from(access.op.is_write())
        )?;
        written += 1;
    }
    output.flush()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "# a comment\n\n0 0x40 0\n1 128 w\n0 0x80 R\n";

    #[test]
    fn text_imports_parse_hex_decimal_and_rw_flags() {
        assert_eq!(scan_text_cores(SAMPLE.as_bytes()).unwrap(), 2);
        let mut ladt = Vec::new();
        let converted =
            text_to_ladt(SAMPLE.as_bytes(), &mut ladt, TraceHeader::new(2, "EXT", 0)).unwrap();
        assert_eq!(converted, 3);
        let (header, per_core) = crate::reader::decode_all(ladt.as_slice()).unwrap();
        assert_eq!(header.benchmark, "EXT");
        assert_eq!(per_core[0].len(), 2);
        assert_eq!(per_core[1].len(), 1);
        assert_eq!(per_core[0][0].address.value(), 0x40);
        assert!(!per_core[0][0].op.is_write());
        assert_eq!(per_core[1][0].address.value(), 128);
        assert!(per_core[1][0].op.is_write());
    }

    #[test]
    fn text_roundtrips_through_ladt() {
        let mut ladt = Vec::new();
        text_to_ladt(SAMPLE.as_bytes(), &mut ladt, TraceHeader::new(2, "EXT", 0)).unwrap();
        let mut text = Vec::new();
        let written = ladt_to_text(ladt.as_slice(), &mut text).unwrap();
        assert_eq!(written, 3);
        let text = String::from_utf8(text).unwrap();
        // Re-import the export: same accesses.
        let mut ladt2 = Vec::new();
        text_to_ladt(text.as_bytes(), &mut ladt2, TraceHeader::new(2, "EXT", 0)).unwrap();
        let a = crate::reader::decode_all(ladt.as_slice()).unwrap().1;
        let b = crate::reader::decode_all(ladt2.as_slice()).unwrap().1;
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_lines_are_typed_errors_with_line_numbers() {
        for (text, needle) in [
            ("x 0 0\n", "core"),
            ("0\n", "missing address"),
            ("0 zz 0\n", "bad address"),
            ("0 0x40\n", "missing is_write"),
            ("0 0x40 2\n", "bad is_write"),
            ("0 0x40 0 9\n", "trailing"),
        ] {
            let err =
                text_to_ladt(text.as_bytes(), Vec::new(), TraceHeader::new(2, "X", 0)).unwrap_err();
            match err {
                TraceError::Text { line, message } => {
                    assert_eq!(line, 1);
                    assert!(
                        message.contains(needle),
                        "{message:?} should mention {needle:?}"
                    );
                }
                other => panic!("expected a Text error, got {other:?}"),
            }
        }
        // A core beyond the header's range is an InvalidCore error.
        assert!(matches!(
            text_to_ladt(
                "7 0 0\n".as_bytes(),
                Vec::new(),
                TraceHeader::new(2, "X", 0)
            ),
            Err(TraceError::InvalidCore {
                core: 7,
                num_cores: 2
            })
        ));
        // An empty trace cannot determine a core count.
        assert!(matches!(
            scan_text_cores("# nothing\n".as_bytes()),
            Err(TraceError::Corrupt { .. })
        ));
    }
}
