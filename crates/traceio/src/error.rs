//! The error tree of the trace-I/O layer.

use std::error::Error;
use std::fmt;
use std::io;

use lad_trace::error::ProfileError;

/// Everything that can go wrong while capturing, serializing or replaying a
/// trace.
///
/// Decode failures distinguish *truncation* (the stream ended inside a
/// structure — often a partial download or an interrupted recording) from
/// *corruption* (the bytes are there but violate the format), because the
/// operator response differs: re-transfer versus re-record.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `LADT` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The stream's format version is newer than this reader understands.
    UnsupportedVersion {
        /// The version found in the header.
        version: u64,
    },
    /// The stream ended in the middle of a structure.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The bytes are present but violate the format.
    Corrupt {
        /// What was being decoded when the violation was found.
        context: &'static str,
    },
    /// An access names a core outside the header's `0..num_cores` range.
    InvalidCore {
        /// The offending core index.
        core: usize,
        /// The number of cores declared in the header.
        num_cores: usize,
    },
    /// The trace spans more cores than the consumer can accommodate (e.g. a
    /// 64-core recording replayed on a 16-core simulated system).
    CoreCountExceeded {
        /// Cores the trace spans.
        trace_cores: usize,
        /// Cores the consumer supports.
        limit: usize,
    },
    /// A streaming source was used again after a failed rewind destroyed
    /// its reader (the stream position is unknown, so continuing would
    /// decode garbage).  Reopen the source to recover.
    SourcePoisoned,
    /// A benchmark profile failed validation (shared with the trace layer,
    /// so generation and I/O failures are matchable through one tree).
    Profile(ProfileError),
    /// A plain-text trace line could not be parsed.
    Text {
        /// 1-based line number in the text input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(err) => write!(f, "trace I/O failed: {err}"),
            TraceError::BadMagic { found } => {
                write!(f, "not a LADT trace (magic {found:02x?})")
            }
            TraceError::UnsupportedVersion { version } => {
                write!(f, "unsupported LADT version {version}")
            }
            TraceError::Truncated { context } => {
                write!(f, "trace truncated while reading {context}")
            }
            TraceError::Corrupt { context } => write!(f, "trace corrupt in {context}"),
            TraceError::InvalidCore { core, num_cores } => {
                write!(
                    f,
                    "access names core {core} but the trace spans {num_cores} cores"
                )
            }
            TraceError::CoreCountExceeded { trace_cores, limit } => {
                write!(
                    f,
                    "trace spans {trace_cores} cores but the consumer only supports {limit}"
                )
            }
            TraceError::SourcePoisoned => {
                write!(f, "trace source unusable after a failed rewind; reopen it")
            }
            TraceError::Profile(err) => write!(f, "invalid benchmark profile: {err}"),
            TraceError::Text { line, message } => {
                write!(f, "text trace line {line}: {message}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(err) => Some(err),
            TraceError::Profile(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(err: io::Error) -> Self {
        TraceError::Io(err)
    }
}

impl From<ProfileError> for TraceError {
    fn from(err: ProfileError) -> Self {
        TraceError::Profile(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_operator_readable() {
        assert_eq!(
            TraceError::BadMagic { found: *b"ELF\x7f" }.to_string(),
            "not a LADT trace (magic [45, 4c, 46, 7f])"
        );
        assert_eq!(
            TraceError::Truncated {
                context: "frame payload"
            }
            .to_string(),
            "trace truncated while reading frame payload"
        );
        assert_eq!(
            TraceError::InvalidCore {
                core: 9,
                num_cores: 4
            }
            .to_string(),
            "access names core 9 but the trace spans 4 cores"
        );
        assert_eq!(
            TraceError::Text {
                line: 3,
                message: "missing is_write".into()
            }
            .to_string(),
            "text trace line 3: missing is_write"
        );
    }

    #[test]
    fn sources_are_chained() {
        let err = TraceError::from(io::Error::other("disk on fire"));
        assert!(err.source().is_some());
        let err = TraceError::from(ProfileError::ZeroSharingDegree);
        assert!(matches!(
            err,
            TraceError::Profile(ProfileError::ZeroSharingDegree)
        ));
        assert!(err.source().is_some());
        assert!(TraceError::Corrupt { context: "flags" }.source().is_none());
    }
}
