//! Stream-level LADT guarantees: encode→decode round-trips whole workloads
//! bit-exactly, corrupted streams fail with typed errors instead of
//! panicking, and the reader's working set stays bounded by one chunk even
//! for traces far larger than their in-memory representation.

use lad_common::types::{Address, CoreId, DataClass, MemOp, MemoryAccess};
use lad_trace::benchmarks::Benchmark;
use lad_trace::generator::TraceGenerator;
use lad_traceio::error::TraceError;
use lad_traceio::format::TraceHeader;
use lad_traceio::reader::{decode_all, TraceReader};
use lad_traceio::writer::{encode_workload, TraceWriter};
use proptest::prelude::*;

#[test]
fn workload_roundtrips_bit_exactly_for_every_quick_benchmark() {
    for benchmark in [
        Benchmark::Barnes,
        Benchmark::Facesim,
        Benchmark::Blackscholes,
        Benchmark::Fluidanimate,
        Benchmark::LuNonContiguous,
    ] {
        let trace = TraceGenerator::new(benchmark.profile()).generate(8, 200, 0x1ad);
        let bytes = encode_workload(&trace, 0x1ad).unwrap();
        let (header, per_core) = decode_all(bytes.as_slice()).unwrap();
        assert_eq!(header.benchmark, trace.name());
        assert_eq!(header.num_cores, trace.num_cores());
        assert_eq!(header.seed, 0x1ad);
        for (core, stream) in per_core.iter().enumerate() {
            assert_eq!(
                stream.as_slice(),
                trace.core_stream(CoreId::new(core)),
                "{benchmark:?} core {core} diverged through the LADT round trip"
            );
        }
    }
}

#[test]
fn encoding_is_compact_relative_to_the_in_memory_form() {
    let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(8, 500, 3);
    let bytes = encode_workload(&trace, 3).unwrap();
    let in_memory = trace.total_accesses() * std::mem::size_of::<MemoryAccess>();
    assert!(
        bytes.len() * 2 < in_memory,
        "LADT should compress: {} bytes on disk vs {} in memory",
        bytes.len(),
        in_memory
    );
}

/// The acceptance-criterion test: a trace bigger than any in-memory
/// representation streams through the reader with only per-chunk buffering,
/// asserted on reader state at every step.
#[test]
fn reader_streams_large_traces_with_per_chunk_buffering() {
    const CHUNK: usize = 512;
    const PER_CORE: usize = 40_000;
    const CORES: usize = 4;

    // Synthesize the stream access-by-access so the full trace never exists
    // in memory on the writer side either.
    let header = TraceHeader::new(CORES, "SYNTH-LARGE", 1);
    let mut writer = TraceWriter::with_chunk_size(Vec::new(), header, CHUNK).unwrap();
    for i in 0..PER_CORE {
        for core in 0..CORES {
            let access = MemoryAccess {
                core: CoreId::new(core),
                address: Address::new(((core as u64) << 32) | ((i as u64 % 7919) * 64)),
                op: if i % 5 == 0 {
                    MemOp::Write
                } else {
                    MemOp::Read
                },
                compute_cycles: (i % 30) as u32,
                class: DataClass::Private,
            };
            writer.write_access(&access).unwrap();
        }
    }
    let bytes = writer.finish().unwrap();

    let total_accesses = CORES * PER_CORE;
    let in_memory_bytes = total_accesses * std::mem::size_of::<MemoryAccess>();
    assert!(
        bytes.len() < in_memory_bytes,
        "the encoded trace ({} bytes) must undercut the in-memory form ({in_memory_bytes} bytes)",
        bytes.len()
    );

    let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
    let mut read = 0usize;
    while let Some(access) = reader.next_access().unwrap() {
        assert!(access.core.index() < CORES);
        // The invariant under test: the reader never holds more than one
        // chunk of decoded accesses, however long the stream runs.
        assert!(
            reader.buffered_accesses() < CHUNK,
            "reader buffered {} accesses mid-stream (chunk is {CHUNK})",
            reader.buffered_accesses()
        );
        read += 1;
    }
    assert_eq!(read, total_accesses);
    assert!(reader.max_buffered_accesses() <= CHUNK);
    // The bound the criterion asks for: reader working set (one chunk) is a
    // small fraction of the trace's in-memory representation.
    let reader_working_set = reader.max_buffered_accesses() * std::mem::size_of::<MemoryAccess>();
    assert!(
        reader_working_set * 100 < in_memory_bytes,
        "reader working set {reader_working_set} bytes is not O(chunk) \
         relative to {in_memory_bytes} bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flipping any single byte of a valid stream (or truncating it
    /// anywhere) yields a typed error or a decode — never a panic.
    #[test]
    fn corrupted_streams_error_instead_of_panicking(seed in 1u64..500, site in any::<u32>(), flip in 1u8..=255) {
        let trace = TraceGenerator::new(Benchmark::Dedup.profile()).generate(2, 40, seed);
        let bytes = encode_workload(&trace, seed).unwrap();

        // Bit-flip somewhere in the stream.
        let mut flipped = bytes.clone();
        let site = (site as usize) % flipped.len();
        flipped[site] ^= flip;
        match decode_all(flipped.as_slice()) {
            // Some flips decode (e.g. a changed address delta, or a frame
            // tag turned into the end marker): corruption the format cannot
            // detect without checksums, but it must still decode to a
            // *consistent* stream, not crash.
            Ok((header, per_core)) => {
                prop_assert!(header.num_cores >= 1);
                prop_assert_eq!(per_core.len(), header.num_cores);
            }
            Err(
                TraceError::Truncated { .. }
                | TraceError::Corrupt { .. }
                | TraceError::BadMagic { .. }
                | TraceError::UnsupportedVersion { .. }
                | TraceError::InvalidCore { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }

        // Truncation at the same site is always a typed error.
        match decode_all(&bytes[..site]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "a strict prefix decoded as a complete stream"),
        }
    }
}
