//! Property tests for the LADT codecs: varint, zigzag and the delta
//! transform round-trip identity over arbitrary sequences, and malformed
//! byte streams always surface as typed errors — never as panics or silent
//! misreads.

use lad_traceio::error::TraceError;
use lad_traceio::varint::{
    apply_delta, decode_u64, delta, encode_u64, read_u64, unzigzag, zigzag, MAX_VARINT_BYTES,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Varint encode→decode is the identity for arbitrary `u64` sequences,
    /// through both the slice and the reader decoding paths.
    #[test]
    fn varint_roundtrips_u64_sequences(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            encode_u64(&mut buf, v);
        }
        prop_assert!(buf.len() <= values.len() * MAX_VARINT_BYTES);

        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(decode_u64(&buf, &mut pos, "prop").unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());

        let mut cursor = std::io::Cursor::new(&buf);
        for &v in &values {
            prop_assert_eq!(read_u64(&mut cursor, "prop").unwrap(), Some(v));
        }
        prop_assert_eq!(read_u64(&mut cursor, "prop").unwrap(), None);
    }

    /// Zigzag is a bijection on arbitrary `i64`s, and its image orders small
    /// magnitudes first (the property the frame encoding relies on for
    /// short varints).
    #[test]
    fn zigzag_roundtrips_i64(values in prop::collection::vec(any::<i64>(), 1..64)) {
        for &v in &values {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
            if v.unsigned_abs() < (1 << 62) {
                prop_assert!(zigzag(v) <= 2 * v.unsigned_abs());
            }
        }
    }

    /// Delta encoding walks any `u64` sequence losslessly, including
    /// wrap-around jumps.
    #[test]
    fn delta_chain_roundtrips(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut previous = 0u64;
        let mut deltas = Vec::new();
        for &v in &values {
            deltas.push(delta(previous, v));
            previous = v;
        }
        let mut rebuilt = Vec::new();
        let mut previous = 0u64;
        for &d in &deltas {
            previous = apply_delta(previous, d);
            rebuilt.push(previous);
        }
        prop_assert_eq!(rebuilt, values);
    }

    /// The full pipeline (delta → zigzag → varint) round-trips arbitrary
    /// sequences — the exact transform a frame applies to addresses.
    #[test]
    fn delta_zigzag_varint_pipeline_roundtrips(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let mut buf = Vec::new();
        let mut previous = 0u64;
        for &v in &values {
            encode_u64(&mut buf, zigzag(delta(previous, v)));
            previous = v;
        }
        let mut pos = 0;
        let mut previous = 0u64;
        for &v in &values {
            previous = apply_delta(previous, unzigzag(decode_u64(&buf, &mut pos, "prop").unwrap()));
            prop_assert_eq!(previous, v);
        }
    }

    /// Every strict prefix of a valid varint stream fails with `Truncated`,
    /// never panics and never silently decodes the wrong count.
    #[test]
    fn truncated_streams_error_cleanly(values in prop::collection::vec(any::<u64>(), 1..16), cut in any::<u16>()) {
        let mut buf = Vec::new();
        for &v in &values {
            encode_u64(&mut buf, v);
        }
        let cut = (cut as usize) % buf.len();
        let truncated = &buf[..cut];
        let mut pos = 0;
        let mut decoded = 0usize;
        let outcome = loop {
            if pos == truncated.len() {
                break Ok(decoded);
            }
            match decode_u64(truncated, &mut pos, "prop") {
                Ok(_) => decoded += 1,
                Err(err) => break Err(err),
            }
        };
        match outcome {
            // Cutting on a varint boundary decodes a prefix of the values.
            Ok(count) => prop_assert!(count <= values.len()),
            Err(err) => prop_assert!(matches!(err, TraceError::Truncated { .. })),
        }
    }

    /// Arbitrary byte soup never panics the decoder: every outcome is a
    /// value or a typed error.
    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut pos = 0;
        while pos < bytes.len() {
            match decode_u64(&bytes, &mut pos, "prop") {
                Ok(_) => {}
                Err(TraceError::Truncated { .. }) | Err(TraceError::Corrupt { .. }) => break,
                Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            }
        }
    }
}
