//! Memory controllers with finite bandwidth and FIFO queueing.

use lad_common::config::DramConfig;
use lad_common::stats::Counter;
use lad_common::types::{CoreId, Cycle};

/// The timing outcome of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycles spent waiting for the controller to become free.
    pub queue_delay: Cycle,
    /// Cycles spent performing the access itself (fixed latency + data
    /// transfer time).
    pub service_latency: Cycle,
    /// Cycle at which the access completes.
    pub completion: Cycle,
}

impl DramAccess {
    /// Total latency (queueing + service).
    pub fn total_latency(&self) -> Cycle {
        self.queue_delay + self.service_latency
    }
}

/// One memory controller: a single-server FIFO with fixed access latency and
/// a bandwidth-derived occupancy per request.
#[derive(Debug, Clone)]
pub struct DramController {
    access_latency: u32,
    /// Controller occupancy per cache-line request, in cycles
    /// (line size / bandwidth), i.e. the inverse of its sustainable request
    /// rate.
    service_occupancy: u64,
    free_at: Cycle,
    accesses: Counter,
    busy_cycles: u64,
}

impl DramController {
    /// Creates a controller from the DRAM configuration and cache line size.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth is not positive.
    pub fn new(config: &DramConfig, line_bytes: usize) -> Self {
        assert!(
            config.bandwidth_bytes_per_cycle > 0.0,
            "bandwidth must be positive"
        );
        let occupancy = (line_bytes as f64 / config.bandwidth_bytes_per_cycle).ceil() as u64;
        DramController {
            access_latency: config.access_latency,
            service_occupancy: occupancy.max(1),
            free_at: Cycle::ZERO,
            accesses: Counter::new(),
            busy_cycles: 0,
        }
    }

    /// Performs one cache-line access issued at cycle `now`.
    pub fn access(&mut self, now: Cycle) -> DramAccess {
        let start = now.max(self.free_at);
        let queue_delay = start.since(now);
        // The controller is occupied for the transfer time of the line; the
        // fixed access latency overlaps subsequent requests (banked DRAM).
        self.free_at = start + self.service_occupancy;
        self.busy_cycles += self.service_occupancy;
        self.accesses.increment();
        let service_latency = Cycle::new(self.access_latency as u64 + self.service_occupancy);
        DramAccess {
            queue_delay,
            service_latency,
            completion: start + service_latency,
        }
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses.value()
    }

    /// Total cycles of controller occupancy (for utilization diagnostics).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Cycle at which the controller next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Clears queue state and statistics.
    pub fn reset(&mut self) {
        self.free_at = Cycle::ZERO;
        self.accesses = Counter::new();
        self.busy_cycles = 0;
    }

    /// Snapshots the controller's mutable state for checkpointing.
    pub fn state(&self) -> DramControllerState {
        DramControllerState {
            free_at: self.free_at,
            accesses: self.accesses.value(),
            busy_cycles: self.busy_cycles,
        }
    }

    /// Restores a snapshot (the timing parameters come from the
    /// configuration the controller was built with).
    pub fn restore_state(&mut self, state: &DramControllerState) {
        self.free_at = state.free_at;
        self.accesses = Counter::from_value(state.accesses);
        self.busy_cycles = state.busy_cycles;
    }
}

/// Plain-data state of one [`DramController`] for checkpoint/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramControllerState {
    /// Cycle at which the controller next becomes free.
    pub free_at: Cycle,
    /// Accesses served so far.
    pub accesses: u64,
    /// Total cycles of controller occupancy so far.
    pub busy_cycles: u64,
}

/// The full off-chip memory system: one controller per configured channel,
/// with cache lines address-interleaved across controllers.
#[derive(Debug, Clone)]
pub struct DramSystem {
    controllers: Vec<DramController>,
    /// Core whose tile hosts each controller (for network routing to the
    /// controller).
    controller_cores: Vec<CoreId>,
}

impl DramSystem {
    /// Builds the memory system.
    ///
    /// `controller_cores` gives the tile of each controller, as produced by
    /// [`lad_common::config::SystemConfig::dram_controller_core`].
    ///
    /// # Panics
    ///
    /// Panics if `controller_cores.len()` does not equal the configured
    /// number of controllers, or if there are no controllers.
    pub fn new(config: &DramConfig, line_bytes: usize, controller_cores: Vec<CoreId>) -> Self {
        assert!(config.num_controllers > 0, "need at least one controller");
        assert_eq!(
            controller_cores.len(),
            config.num_controllers,
            "one host core per controller required"
        );
        DramSystem {
            controllers: (0..config.num_controllers)
                .map(|_| DramController::new(config, line_bytes))
                .collect(),
            controller_cores,
        }
    }

    /// Number of controllers.
    pub fn num_controllers(&self) -> usize {
        self.controllers.len()
    }

    /// The controller index responsible for a line (address interleaving).
    pub fn controller_for(&self, line_index: u64) -> usize {
        (line_index % self.controllers.len() as u64) as usize
    }

    /// The core hosting the controller responsible for `line_index`.
    pub fn controller_core_for(&self, line_index: u64) -> CoreId {
        self.controller_cores[self.controller_for(line_index)]
    }

    /// Performs a cache-line access for `line_index` issued at `now`.
    pub fn access(&mut self, line_index: u64, now: Cycle) -> DramAccess {
        let idx = self.controller_for(line_index);
        self.controllers[idx].access(now)
    }

    /// Total accesses across all controllers (drives DRAM energy).
    pub fn total_accesses(&self) -> u64 {
        self.controllers.iter().map(|c| c.accesses()).sum()
    }

    /// Per-controller access counts.
    pub fn per_controller_accesses(&self) -> Vec<u64> {
        self.controllers.iter().map(|c| c.accesses()).collect()
    }

    /// Clears all queue state and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.controllers {
            c.reset();
        }
    }

    /// Snapshots every controller's mutable state, in controller order.
    pub fn state(&self) -> Vec<DramControllerState> {
        self.controllers.iter().map(DramController::state).collect()
    }

    /// Restores a snapshot taken from a system with the same controller
    /// count.
    ///
    /// # Panics
    ///
    /// Panics on a controller-count mismatch.
    pub fn restore_state(&mut self, state: &[DramControllerState]) {
        assert_eq!(
            state.len(),
            self.controllers.len(),
            "controller count mismatch: the snapshot is from a different memory system"
        );
        for (controller, snapshot) in self.controllers.iter_mut().zip(state) {
            controller.restore_state(snapshot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lad_common::config::SystemConfig;

    fn dram_config() -> DramConfig {
        SystemConfig::paper_default().dram
    }

    #[test]
    fn single_access_latency() {
        let mut ctrl = DramController::new(&dram_config(), 64);
        let access = ctrl.access(Cycle::new(100));
        assert_eq!(access.queue_delay, Cycle::ZERO);
        // 75-cycle fixed latency + 64 bytes at 5 B/cycle = 13 cycles.
        assert_eq!(access.service_latency, Cycle::new(88));
        assert_eq!(access.completion, Cycle::new(188));
        assert_eq!(access.total_latency(), Cycle::new(88));
        assert_eq!(ctrl.accesses(), 1);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut ctrl = DramController::new(&dram_config(), 64);
        let a = ctrl.access(Cycle::ZERO);
        let b = ctrl.access(Cycle::ZERO);
        assert_eq!(a.queue_delay, Cycle::ZERO);
        assert_eq!(b.queue_delay, Cycle::new(13));
        assert!(b.completion > a.completion);
        assert_eq!(ctrl.busy_cycles(), 26);
        assert_eq!(ctrl.free_at(), Cycle::new(26));
    }

    #[test]
    fn idle_gap_clears_queue() {
        let mut ctrl = DramController::new(&dram_config(), 64);
        ctrl.access(Cycle::ZERO);
        let later = ctrl.access(Cycle::new(1000));
        assert_eq!(later.queue_delay, Cycle::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut ctrl = DramController::new(&dram_config(), 64);
        ctrl.access(Cycle::ZERO);
        ctrl.reset();
        assert_eq!(ctrl.accesses(), 0);
        assert_eq!(ctrl.free_at(), Cycle::ZERO);
        assert_eq!(ctrl.busy_cycles(), 0);
    }

    fn system() -> DramSystem {
        let config = SystemConfig::paper_default();
        let cores = (0..config.dram.num_controllers)
            .map(|i| config.dram_controller_core(i))
            .collect();
        DramSystem::new(&config.dram, config.cache_line_bytes, cores)
    }

    #[test]
    fn system_interleaves_lines_across_controllers() {
        let sys = system();
        assert_eq!(sys.num_controllers(), 8);
        assert_eq!(sys.controller_for(0), 0);
        assert_eq!(sys.controller_for(9), 1);
        assert_eq!(sys.controller_for(8), 0);
        let distinct: std::collections::HashSet<_> =
            (0..8u64).map(|l| sys.controller_core_for(l)).collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn system_counts_accesses_per_controller() {
        let mut sys = system();
        for line in 0..16u64 {
            sys.access(line, Cycle::ZERO);
        }
        assert_eq!(sys.total_accesses(), 16);
        assert_eq!(sys.per_controller_accesses(), vec![2; 8]);
        // Two accesses interleaved to the same controller queue behind each
        // other, different controllers do not interfere.
        let mut sys = system();
        let a = sys.access(0, Cycle::ZERO);
        let b = sys.access(8, Cycle::ZERO);
        let c = sys.access(1, Cycle::ZERO);
        assert_eq!(a.queue_delay, Cycle::ZERO);
        assert!(b.queue_delay > Cycle::ZERO);
        assert_eq!(c.queue_delay, Cycle::ZERO);
        sys.reset();
        assert_eq!(sys.total_accesses(), 0);
    }

    #[test]
    fn state_roundtrip_preserves_queueing() {
        let mut sys = system();
        sys.access(0, Cycle::ZERO);
        sys.access(8, Cycle::ZERO);
        sys.access(1, Cycle::ZERO);

        let state = sys.state();
        let mut restored = system();
        restored.restore_state(&state);
        assert_eq!(restored.state(), state);
        assert_eq!(restored.total_accesses(), sys.total_accesses());

        // A follow-up access to the busy controller queues identically.
        let expect = sys.access(0, Cycle::new(5));
        let got = restored.access(0, Cycle::new(5));
        assert_eq!(got, expect);
        assert!(got.queue_delay > Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "different memory system")]
    fn restore_rejects_wrong_controller_count() {
        let mut sys = system();
        sys.restore_state(&[DramControllerState {
            free_at: Cycle::ZERO,
            accesses: 0,
            busy_cycles: 0,
        }]);
    }

    #[test]
    #[should_panic(expected = "one host core per controller")]
    fn system_requires_matching_core_list() {
        let config = SystemConfig::paper_default();
        DramSystem::new(&config.dram, 64, vec![CoreId::new(0)]);
    }
}
