//! Off-chip DRAM model.
//!
//! Table 1 of the paper: 8 memory controllers, 5 GBps per controller and a
//! 75 ns access latency.  At the 1 GHz core clock this is 5 bytes/cycle of
//! bandwidth and 75 cycles of fixed latency per controller.
//!
//! The model captures the two effects the paper's completion-time breakdown
//! attributes to DRAM ("LLC home to off-chip memory latency"): the fixed
//! access latency and the queueing delay incurred when a controller's finite
//! bandwidth saturates.  Each controller is a single-server FIFO whose
//! service time is `line_bytes / bandwidth`; a request arriving while the
//! controller is busy waits for it to drain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;

pub use controller::{DramAccess, DramController, DramControllerState, DramSystem};
