//! Criterion micro-benchmarks for the building blocks of the reproduction:
//! the locality classifier, the directory, the cache array, the mesh network
//! and a small end-to-end simulation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lad_common::config::SystemConfig;
use lad_common::types::{CacheLine, CoreId, Cycle};
use lad_energy::model::EnergyModel;
use lad_noc::message::MessageKind;
use lad_noc::Network;
use lad_replication::classifier::{ClassifierKind, LocalityClassifier};
use lad_replication::config::ReplicationConfig;
use lad_replication::policy::SchemeRegistry;
use lad_replication::scheme::SchemeId;
use lad_sim::engine::Simulator;
use lad_trace::benchmarks::Benchmark;
use lad_trace::generator::TraceGenerator;

fn bench_classifier(c: &mut Criterion) {
    c.bench_function("classifier/limited3_read_train", |b| {
        b.iter_batched(
            || LocalityClassifier::new(ClassifierKind::Limited(3), 3),
            |mut classifier| {
                for i in 0..64usize {
                    classifier.on_home_read(CoreId::new(i % 8));
                }
                classifier
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("classifier/complete_read_train", |b| {
        b.iter_batched(
            || LocalityClassifier::new(ClassifierKind::Complete, 3),
            |mut classifier| {
                for i in 0..64usize {
                    classifier.on_home_read(CoreId::new(i));
                }
                classifier
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_array(c: &mut Criterion) {
    use lad_cache::replacement::PlainLru;
    use lad_cache::set_assoc::SetAssocCache;
    c.bench_function("cache/set_assoc_fill_and_lookup", |b| {
        b.iter_batched(
            || SetAssocCache::<u64>::new(512, 8),
            |mut cache| {
                for i in 0..2048u64 {
                    cache.insert(CacheLine::from_index(i), i, &PlainLru);
                    cache.get(CacheLine::from_index(i / 2));
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_directory(c: &mut Criterion) {
    use lad_coherence::directory::DirectoryEntry;
    c.bench_function("directory/read_write_churn", |b| {
        b.iter_batched(
            || DirectoryEntry::new(4),
            |mut entry| {
                for i in 0..32usize {
                    entry.handle_read(CoreId::new(i % 16));
                    if i % 5 == 0 {
                        entry.handle_write(CoreId::new(i % 16));
                    }
                }
                entry
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("noc/mesh_send_64core", |b| {
        let config = SystemConfig::paper_default();
        b.iter_batched(
            || Network::new(&config.network, config.cache_line_bytes),
            |mut network| {
                for i in 0..128usize {
                    network.send(
                        CoreId::new(i % 64),
                        CoreId::new((i * 7) % 64),
                        if i % 2 == 0 {
                            MessageKind::Control
                        } else {
                            MessageKind::Data
                        },
                        Cycle::new(i as u64),
                    );
                }
                network
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ladt_codec(c: &mut Criterion) {
    use lad_traceio::reader::TraceReader;
    use lad_traceio::writer::encode_workload;

    // 4 cores x 2000 accesses: big enough that the per-access cost
    // dominates framing, small enough for the CI smoke run.  Mean ns/iter
    // divided by 8000 gives ns/access (throughput = 1e9 / that, acc/s).
    let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(4, 2000, 5);
    let accesses = trace.total_accesses();
    let bytes = encode_workload(&trace, 5).expect("encoding to memory cannot fail");
    println!(
        "traceio corpus: {accesses} accesses, {} bytes encoded ({:.2} bytes/access)",
        bytes.len(),
        bytes.len() as f64 / accesses as f64
    );

    c.bench_function("traceio/ladt_encode_8000_accesses", |b| {
        b.iter(|| encode_workload(&trace, 5).expect("encoding to memory cannot fail"))
    });
    c.bench_function("traceio/ladt_decode_8000_accesses", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("valid header");
            let mut count = 0u64;
            while reader.next_access().expect("valid stream").is_some() {
                count += 1;
            }
            count
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let system = SystemConfig::small_test();
    let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(system.num_cores, 400, 3);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("barnes_16core_locality_aware", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(system.clone(), ReplicationConfig::locality_aware(3));
            sim.run(&trace)
        })
    });
    group.bench_function("barnes_16core_snuca", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(system.clone(), ReplicationConfig::static_nuca());
            sim.run(&trace)
        })
    });
    group.finish();
}

/// End-to-end engine throughput (accesses per second) for every paper
/// scheme at the three core counts BENCH_7.json tracks.  `LAD_CORES` /
/// `LAD_ACCESSES` shrink the sweep to one core count for the CI smoke run;
/// `lad-bench-report` is the measurement-grade version of this sweep
/// (best-of-N wall clock, JSON output).
fn bench_scheme_throughput(c: &mut Criterion) {
    let env_cores: Option<usize> = std::env::var("LAD_CORES").ok().and_then(|v| v.parse().ok());
    let env_accesses: Option<usize> = std::env::var("LAD_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok());
    let sweep: Vec<(usize, usize)> = match env_cores {
        Some(cores) => vec![(cores, env_accesses.unwrap_or(250))],
        None => vec![(16, 2000), (64, 1000), (256, 250)],
    };
    let registry = SchemeRegistry::builtin();
    let schemes = [
        SchemeId::StaticNuca,
        SchemeId::ReactiveNuca,
        SchemeId::VictimReplication,
        SchemeId::asr_at_level(0.5),
        SchemeId::Rt(1),
        SchemeId::Rt(3),
        SchemeId::Rt(8),
    ];
    for (cores, per_core) in sweep {
        let system = SystemConfig::paper_default().with_num_cores(cores);
        let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(cores, per_core, 7);
        let mut group = c.benchmark_group(&format!("throughput/{cores}c"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(trace.total_accesses() as u64));
        for scheme in schemes {
            let entry = registry
                .get(scheme)
                .unwrap_or_else(|err| panic!("builtin registry must cover the sweep: {err}"));
            group.bench_function(&scheme.label(), |b| {
                b.iter(|| {
                    let mut sim = Simulator::with_policy_and_energy_model(
                        system.clone(),
                        entry.config.clone(),
                        Arc::clone(&entry.policy),
                        EnergyModel::paper_default(),
                    );
                    sim.run(&trace)
                })
            });
        }
        group.finish();
    }
}

/// The observability-overhead guard: the 64-core RT-3 throughput cell
/// with engine metrics recording into the armed process-wide registry
/// versus a no-op registry (disarmed handles skip the atomics entirely).
/// The acceptance bar is armed within 3% of no-op — the hot path is one
/// local increment per access plus two atomics per dispatch batch.
///
/// Back-to-back 5-iteration blocks drift with machine noise far more than
/// 3%, so the headline number is a *paired* comparison: the two arms
/// alternate run for run and each keeps its best wall clock (the
/// workspace's best-of-N convention — interference slows runs, nothing
/// speeds them up).  The group's own armed/noop entries are kept for the
/// usual shim report, but the `metrics overhead` line is the guard.
fn bench_metrics_overhead(c: &mut Criterion) {
    let cores: usize = std::env::var("LAD_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let per_core: usize = std::env::var("LAD_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let system = SystemConfig::paper_default().with_num_cores(cores);
    let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(cores, per_core, 7);
    let accesses = trace.total_accesses();
    let registry = SchemeRegistry::builtin();
    let entry = registry
        .get(SchemeId::Rt(3))
        .unwrap_or_else(|err| panic!("builtin registry must cover RT-3: {err}"));
    let noop = lad_obs::MetricsRegistry::noop();

    let timed_run = |metrics: &lad_obs::MetricsRegistry| {
        let mut sim = Simulator::with_policy_and_energy_model(
            system.clone(),
            entry.config.clone(),
            Arc::clone(&entry.policy),
            EnergyModel::paper_default(),
        );
        sim.set_metrics_registry(metrics);
        let start = std::time::Instant::now();
        criterion::black_box(sim.run(&trace));
        start.elapsed().as_secs_f64()
    };

    let reps = 7usize;
    let mut armed_best = f64::INFINITY;
    let mut noop_best = f64::INFINITY;
    for _ in 0..reps {
        armed_best = armed_best.min(timed_run(lad_obs::global()));
        noop_best = noop_best.min(timed_run(&noop));
    }
    let armed_rate = accesses as f64 / armed_best;
    let noop_rate = accesses as f64 / noop_best;
    let overhead = (armed_best / noop_best - 1.0) * 100.0;
    println!(
        "metrics overhead (paired best-of-{reps}, {cores}c RT-3, {accesses} accesses): \
         armed {armed_rate:.0} acc/s vs noop {noop_rate:.0} acc/s ({overhead:+.2}% wall clock)"
    );

    let mut group = c.benchmark_group(&format!("metrics_overhead/{cores}c"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(accesses as u64));
    group.bench_function("armed", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_policy_and_energy_model(
                system.clone(),
                entry.config.clone(),
                Arc::clone(&entry.policy),
                EnergyModel::paper_default(),
            );
            sim.set_metrics_registry(lad_obs::global());
            sim.run(&trace)
        })
    });
    group.bench_function("noop", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_policy_and_energy_model(
                system.clone(),
                entry.config.clone(),
                Arc::clone(&entry.policy),
                EnergyModel::paper_default(),
            );
            sim.set_metrics_registry(&noop);
            sim.run(&trace)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classifier,
    bench_cache_array,
    bench_directory,
    bench_network,
    bench_ladt_codec,
    bench_end_to_end,
    bench_scheme_throughput,
    bench_metrics_overhead
);
criterion_main!(benches);
