//! End-to-end smoke test for the `lad-trace` CLI: record a quick suite,
//! inspect and replay a file, and round-trip through the text form — the
//! same flow the CI workflow exercises in a temp dir.

use std::path::{Path, PathBuf};
use std::process::Command;

use lad_common::json::JsonValue;
use lad_sim::metrics::SimulationReport;

fn lad_trace(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_lad-trace"))
        .args(args)
        .output()
        .expect("failed to spawn lad-trace");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run_ok(args: &[&str]) -> String {
    let (ok, stdout, stderr) = lad_trace(args);
    assert!(ok, "lad-trace {args:?} failed:\n{stderr}");
    stdout
}

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "lad-trace-cli-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn assert_file_nonempty(path: &Path) {
    let len = std::fs::metadata(path)
        .unwrap_or_else(|e| panic!("{} missing: {e}", path.display()))
        .len();
    assert!(len > 0, "{} is empty", path.display());
}

#[test]
fn record_replay_inspect_convert_pipeline() {
    let dir = TempDir::new();
    let out = dir.0.to_str().unwrap().to_string();

    // Record the quick suite at smoke scale.
    let stdout = run_ok(&[
        "record",
        "--out",
        &out,
        "--suite",
        "quick",
        "--cores",
        "4",
        "--accesses",
        "80",
        "--seed",
        "7",
    ]);
    assert!(
        stdout.contains("BARNES"),
        "record output should list benchmarks:\n{stdout}"
    );
    let barnes = dir.path("barnes.ladt");
    assert_file_nonempty(&barnes);

    // Inspect reports the header and per-core stats.
    let stdout = run_ok(&["inspect", barnes.to_str().unwrap()]);
    assert!(stdout.contains("benchmark   BARNES"), "{stdout}");
    assert!(stdout.contains("cores       4"), "{stdout}");
    assert!(stdout.contains("core  accesses"), "{stdout}");

    // Replay under RT-3 and emit a JSON report that parses and decodes.
    let json_path = dir.path("barnes.json");
    let stdout = run_ok(&[
        "replay",
        barnes.to_str().unwrap(),
        "--scheme",
        "RT-3",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(stdout.contains("scheme           RT-3"), "{stdout}");
    let text = std::fs::read_to_string(&json_path).unwrap();
    let value = JsonValue::parse(&text).expect("replay --json must emit parseable JSON");
    let report = SimulationReport::from_json(&value).expect("JSON must decode to a report");
    assert_eq!(report.benchmark, "BARNES");
    assert!(report.total_accesses > 0);

    // Convert to text and back; the re-imported file replays too.
    let text_path = dir.path("barnes.txt");
    run_ok(&[
        "convert",
        "--to",
        "text",
        barnes.to_str().unwrap(),
        text_path.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&text_path).unwrap();
    assert!(
        text.lines()
            .any(|l| l.starts_with(|c: char| c.is_ascii_digit())),
        "{text}"
    );
    let reimported = dir.path("barnes2.ladt");
    run_ok(&[
        "convert",
        "--to",
        "ladt",
        text_path.to_str().unwrap(),
        reimported.to_str().unwrap(),
        "--name",
        "BARNES",
    ]);
    let stdout = run_ok(&["replay", reimported.to_str().unwrap(), "--scheme", "S-NUCA"]);
    assert!(stdout.contains("benchmark        BARNES"), "{stdout}");
}

#[test]
fn cli_errors_are_reported_not_panicked() {
    let dir = TempDir::new();

    // No arguments: usage on stderr, exit code 2.
    let (ok, _, stderr) = lad_trace(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"), "{stderr}");

    // Unknown command.
    let (ok, _, stderr) = lad_trace(&["transmogrify"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    // Missing file.
    let missing = dir.path("missing.ladt");
    let (ok, _, stderr) = lad_trace(&["inspect", missing.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("lad-trace:"), "{stderr}");

    // A non-LADT file is a typed decode error, not a panic.
    let bogus = dir.path("bogus.ladt");
    std::fs::write(&bogus, b"definitely not a trace").unwrap();
    let (ok, _, stderr) = lad_trace(&["replay", bogus.to_str().unwrap(), "--scheme", "RT-3"]);
    assert!(!ok);
    assert!(stderr.contains("not a LADT trace"), "{stderr}");

    // Unknown replay scheme surfaces the registry error.
    let (ok, _, stderr) = lad_trace(&["replay", bogus.to_str().unwrap(), "--scheme", "BOGUS"]);
    assert!(!ok, "{stderr}");
}
