//! Machine-readable report regression: every figure/table binary run with
//! `--quick --json <path>` must emit a JSON document that
//!
//! 1. parses with the workspace's own strict parser,
//! 2. is byte-stable under re-serialization (serialize → parse → serialize
//!    reproduces the same document),
//! 3. carries the self-describing `figure` field, and
//! 4. for binaries that embed a full [`SchemeComparison`], decodes back into
//!    one whose re-encoding matches the original entry for entry.
//!
//! CI runs this suite as a dedicated step so a report-format regression
//! fails the build even when the human-readable CSV output still looks fine.

use std::path::PathBuf;
use std::process::Command;

use lad_common::json::JsonValue;
use lad_sim::experiment::SchemeComparison;

fn run_with_json(name: &str, exe: &str) -> JsonValue {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "lad_json_roundtrip_{}_{}.json",
        name,
        std::process::id()
    ));
    let output = Command::new(exe)
        .arg("--quick")
        .arg("--json")
        .arg(&path)
        .output()
        .unwrap_or_else(|err| panic!("failed to spawn {name}: {err}"));
    assert!(
        output.status.success(),
        "{name} --quick --json exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("{name} wrote no JSON file at {}: {err}", path.display()));
    let _ = std::fs::remove_file(&path);

    // (1) The emitted document parses with our own strict parser.
    let value = JsonValue::parse(&text)
        .unwrap_or_else(|err| panic!("{name} emitted unparseable JSON: {err}\n{text}"));

    // (2) Serialization is stable: pretty(parse(pretty(v))) == pretty(v).
    let reparsed = JsonValue::parse(&value.pretty()).expect("re-serialized JSON must parse");
    assert_eq!(
        reparsed, value,
        "{name}: JSON is not stable under re-serialization"
    );

    // (3) Self-describing.
    assert_eq!(
        value.get("figure").and_then(JsonValue::as_str),
        Some(name),
        "{name}: missing or wrong `figure` field"
    );
    value
}

macro_rules! json_roundtrip_tests {
    ($($test_name:ident => $bin:literal),+ $(,)?) => {$(
        #[test]
        fn $test_name() {
            run_with_json($bin, env!(concat!("CARGO_BIN_EXE_", $bin)));
        }
    )+};
}

json_roundtrip_tests! {
    fig1_runlength_json => "fig1_runlength",
    fig8_miss_breakdown_json => "fig8_miss_breakdown",
    fig9_limited_classifier_json => "fig9_limited_classifier",
    fig10_cluster_size_json => "fig10_cluster_size",
    sec24_storage_json => "sec24_storage",
    sec42_replacement_json => "sec42_replacement",
    table1_config_json => "table1_config",
    table2_benchmarks_json => "table2_benchmarks",
}

/// The comparison-bearing binaries additionally round-trip through the typed
/// deserializer: `SchemeComparison::from_json(to_json(c)) == c`.
fn assert_comparison_roundtrips(name: &str, exe: &str) {
    let value = run_with_json(name, exe);
    let embedded = value
        .get("comparison")
        .unwrap_or_else(|| panic!("{name}: missing embedded comparison"));
    let comparison = SchemeComparison::from_json(embedded)
        .unwrap_or_else(|err| panic!("{name}: comparison does not decode: {err}"));
    assert!(!comparison.benchmarks().is_empty());
    assert_eq!(
        &comparison.to_json(),
        embedded,
        "{name}: comparison changes across a decode/encode round trip"
    );
}

#[test]
fn fig6_energy_comparison_roundtrips() {
    assert_comparison_roundtrips("fig6_energy", env!("CARGO_BIN_EXE_fig6_energy"));
}

#[test]
fn fig7_completion_comparison_roundtrips() {
    assert_comparison_roundtrips("fig7_completion", env!("CARGO_BIN_EXE_fig7_completion"));
}

#[test]
fn headline_summary_comparison_roundtrips() {
    assert_comparison_roundtrips("headline_summary", env!("CARGO_BIN_EXE_headline_summary"));
}

/// The throughput report carries measured cells (rate > 0) plus the pre-PR
/// reference table and derived speedups, all through the strict parser.
#[test]
fn bench_report_json_has_throughput_cells() {
    let value = run_with_json("bench_report", env!("CARGO_BIN_EXE_lad-bench-report"));
    let cells = value
        .get("cells")
        .and_then(JsonValue::as_array)
        .expect("bench_report: missing cells");
    assert!(!cells.is_empty(), "bench_report measured nothing");
    for cell in cells {
        let rate = cell
            .get("accesses_per_sec")
            .and_then(JsonValue::as_f64)
            .expect("cell missing accesses_per_sec");
        assert!(rate > 0.0, "non-positive throughput: {cell:?}");
        // Per-rep wall-clock spread: min == best, and the three order.
        let seconds = |field: &str| {
            cell.get(field)
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("cell missing {field}: {cell:?}"))
        };
        let best = seconds("best_seconds");
        let (min, median, max) = (
            seconds("min_seconds"),
            seconds("median_seconds"),
            seconds("max_seconds"),
        );
        assert_eq!(min, best, "min_seconds must equal best_seconds");
        assert!(
            min <= median && median <= max,
            "rep spread out of order: {cell:?}"
        );
    }
    let baseline = value
        .get("baseline_pre_pr")
        .and_then(|b| b.get("cells"))
        .and_then(JsonValue::as_array)
        .expect("bench_report: missing pre-PR baseline table");
    assert!(!baseline.is_empty());
    // Speedups may legitimately be empty at --quick scale (8 cores has no
    // reference row), but the field must exist and be an array.
    assert!(value
        .get("speedups")
        .and_then(JsonValue::as_array)
        .is_some());
}

/// The committed top-level `BENCH_7.json` (the measured throughput report
/// this repository ships) must always parse with the workspace's own strict
/// parser and keep its measured cells well-formed — CI runs this on every
/// push, so a hand-edit that corrupts the artifact fails the build.
#[test]
fn committed_bench_7_report_parses() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_7.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "committed BENCH_7.json missing at {}: {err}",
            path.display()
        )
    });
    let value = JsonValue::parse(&text)
        .unwrap_or_else(|err| panic!("committed BENCH_7.json does not parse: {err}"));
    assert_eq!(
        value.get("figure").and_then(JsonValue::as_str),
        Some("bench_report")
    );
    let cells = value
        .get("cells")
        .and_then(JsonValue::as_array)
        .expect("committed BENCH_7.json has no cells");
    // The committed report covers the full sweep: 3 core counts x 7 schemes.
    assert_eq!(
        cells.len(),
        21,
        "committed report must cover the full sweep"
    );
    for cell in cells {
        assert!(
            cell.get("accesses_per_sec")
                .and_then(JsonValue::as_f64)
                .is_some_and(|rate| rate > 0.0),
            "cell without positive throughput: {cell:?}"
        );
    }
    assert!(!value
        .get("speedups")
        .and_then(JsonValue::as_array)
        .expect("committed BENCH_7.json has no speedups")
        .is_empty());
}
