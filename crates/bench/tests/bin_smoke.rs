//! Smoke test: every figure/table binary must run to completion at
//! `--quick` scale and produce output.
//!
//! This keeps the figure-reproduction code exercised by `cargo test` instead
//! of only being shipped: a binary that panics, hangs or prints nothing is a
//! regression even if the library tests pass.

use std::process::Command;

fn run_quick(name: &str, exe: &str) {
    let output = Command::new(exe)
        .arg("--quick")
        .output()
        .unwrap_or_else(|err| panic!("failed to spawn {name}: {err}"));
    assert!(
        output.status.success(),
        "{name} --quick exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().count() >= 2,
        "{name} --quick printed almost nothing:\n{stdout}"
    );
}

macro_rules! bin_smoke_tests {
    ($($test_name:ident => $bin:literal),+ $(,)?) => {$(
        #[test]
        fn $test_name() {
            run_quick($bin, env!(concat!("CARGO_BIN_EXE_", $bin)));
        }
    )+};
}

bin_smoke_tests! {
    fig1_runlength_quick => "fig1_runlength",
    fig6_energy_quick => "fig6_energy",
    fig7_completion_quick => "fig7_completion",
    fig8_miss_breakdown_quick => "fig8_miss_breakdown",
    fig9_limited_classifier_quick => "fig9_limited_classifier",
    fig10_cluster_size_quick => "fig10_cluster_size",
    headline_summary_quick => "headline_summary",
    sec24_storage_quick => "sec24_storage",
    sec42_replacement_quick => "sec42_replacement",
    table1_config_quick => "table1_config",
    table2_benchmarks_quick => "table2_benchmarks",
    bench_report_quick => "lad-bench-report",
}
