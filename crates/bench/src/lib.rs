//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` (see DESIGN.md §3 for the index).  The binaries print
//! machine-readable CSV rows plus a short human summary, so the series the
//! paper plots can be regenerated directly:
//!
//! ```text
//! cargo run --release -p lad-bench --bin fig6_energy
//! cargo run --release -p lad-bench --bin fig9_limited_classifier
//! ```
//!
//! All binaries honour two environment variables plus a `--quick` flag so
//! fast runs are possible:
//!
//! * `LAD_ACCESSES` — accesses per core (default 4000),
//! * `LAD_CORES` — number of simulated cores (default 64, the paper target),
//! * `--quick` — smoke-test scale (8 cores, 150 accesses per core) used by
//!   CI to exercise every figure binary; explicit environment variables
//!   still take precedence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lad_common::config::SystemConfig;
use lad_sim::experiment::ExperimentRunner;
use lad_trace::suite::BenchmarkSuite;

/// Whether the binary was invoked with `--quick` (smoke-test scale).
pub fn quick_mode() -> bool {
    std::env::args().any(|arg| arg == "--quick")
}

/// Accesses per core used by the harness (override with `LAD_ACCESSES`).
pub fn accesses_per_core() -> usize {
    let fallback = if quick_mode() { 150 } else { 4000 };
    std::env::var("LAD_ACCESSES").ok().and_then(|v| v.parse().ok()).unwrap_or(fallback)
}

/// Number of cores simulated by the harness (override with `LAD_CORES`).
pub fn num_cores() -> usize {
    let fallback = if quick_mode() { 8 } else { 64 };
    std::env::var("LAD_CORES").ok().and_then(|v| v.parse().ok()).unwrap_or(fallback)
}

/// The system configuration used by the harness: the paper's Table 1 target,
/// scaled to [`num_cores`] cores.
pub fn harness_system() -> SystemConfig {
    let cores = num_cores();
    if cores == 64 {
        SystemConfig::paper_default()
    } else {
        SystemConfig::paper_default().with_num_cores(cores)
    }
}

/// An experiment runner over `suite`, configured from the environment.
pub fn harness_runner(suite: BenchmarkSuite) -> ExperimentRunner {
    let suite = suite.with_accesses_per_core(accesses_per_core());
    ExperimentRunner::new(harness_system(), suite)
}

/// Prints one CSV row (comma-joined).
pub fn csv_row<I: IntoIterator<Item = String>>(fields: I) {
    println!("{}", fields.into_iter().collect::<Vec<_>>().join(","));
}

/// Formats a float with three decimals for CSV output.
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_target() {
        // Environment overrides are not set in the test environment.
        if std::env::var("LAD_CORES").is_err() {
            assert_eq!(num_cores(), 64);
            assert_eq!(harness_system().num_cores, 64);
        }
        if std::env::var("LAD_ACCESSES").is_err() {
            assert_eq!(accesses_per_core(), 4000);
        }
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn runner_uses_requested_trace_length() {
        let runner = harness_runner(BenchmarkSuite::quick());
        assert_eq!(runner.suite().accesses_per_core(), accesses_per_core());
    }
}
