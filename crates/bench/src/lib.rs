//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` (see DESIGN.md §3 for the index).  The binaries print
//! machine-readable CSV rows plus a short human summary, so the series the
//! paper plots can be regenerated directly:
//!
//! ```text
//! cargo run --release -p lad-bench --bin fig6_energy
//! cargo run --release -p lad-bench --bin fig9_limited_classifier
//! ```
//!
//! All binaries honour two environment variables plus two flags:
//!
//! * `LAD_ACCESSES` — accesses per core (default 4000),
//! * `LAD_CORES` — number of simulated cores (default 64, the paper target),
//! * `--quick` — smoke-test scale (8 cores, 150 accesses per core) used by
//!   CI to exercise every figure binary; explicit environment variables
//!   still take precedence,
//! * `--json <path>` — additionally write the binary's results as a JSON
//!   document (see [`emit_json`]) that round-trips through
//!   `lad_common::json::JsonValue::parse`; CI validates every binary's
//!   output this way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use lad_common::config::SystemConfig;
use lad_common::json::JsonValue;
use lad_replication::scheme::{SchemeId, UnknownScheme};
use lad_sim::experiment::{ExperimentRunner, SchemeComparison};
use lad_sim::metrics::SimulationReport;
use lad_trace::benchmarks::Benchmark;
use lad_trace::suite::BenchmarkSuite;

/// Whether the binary was invoked with `--quick` (smoke-test scale).
pub fn quick_mode() -> bool {
    std::env::args().any(|arg| arg == "--quick")
}

/// The path given with `--json <path>`, if any.
pub fn json_output_path() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let Some(path) = args.next() else {
                eprintln!("--json requires a path argument");
                std::process::exit(2);
            };
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Fails fast on an unusable `--json` target: a missing path argument or an
/// unwritable location should abort before the simulations run, not after.
/// Creates (truncates) the target file; [`emit_json`] overwrites it with the
/// real document at the end of the run.  Called by [`harness_system`] /
/// [`harness_runner`], so every figure binary validates the flag at startup.
pub fn validate_json_target() {
    if let Some(path) = json_output_path() {
        lad_common::fs::atomic_write(&path, b"{}\n")
            .unwrap_or_else(|err| panic!("cannot write JSON report to {}: {err}", path.display()));
    }
}

/// Writes `value` (pretty-printed) to the `--json <path>` target when the
/// flag is present; a no-op otherwise.  The note goes to stderr so stdout
/// stays pure CSV.
///
/// # Panics
///
/// Panics when the file cannot be written — a silently dropped report is
/// worse than a failed run.
pub fn emit_json(value: &JsonValue) {
    if let Some(path) = json_output_path() {
        lad_common::fs::atomic_write(&path, value.pretty().as_bytes())
            .unwrap_or_else(|err| panic!("cannot write JSON report to {}: {err}", path.display()));
        eprintln!("wrote JSON report to {}", path.display());
    }
}

/// Accesses per core used by the harness (override with `LAD_ACCESSES`).
pub fn accesses_per_core() -> usize {
    let fallback = if quick_mode() { 150 } else { 4000 };
    std::env::var("LAD_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

/// Number of cores simulated by the harness (override with `LAD_CORES`).
pub fn num_cores() -> usize {
    let fallback = if quick_mode() { 8 } else { 64 };
    std::env::var("LAD_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

/// The system configuration used by the harness: the paper's Table 1 target,
/// scaled to [`num_cores`] cores.
pub fn harness_system() -> SystemConfig {
    validate_json_target();
    let cores = num_cores();
    if cores == 64 {
        SystemConfig::paper_default()
    } else {
        SystemConfig::paper_default().with_num_cores(cores)
    }
}

/// An experiment runner over `suite`, configured from the environment.
pub fn harness_runner(suite: BenchmarkSuite) -> ExperimentRunner {
    let suite = suite.with_accesses_per_core(accesses_per_core());
    ExperimentRunner::new(harness_system(), suite)
}

/// One `(benchmark, scheme)` cell of a [`SchemeComparison`], paired with the
/// benchmark's baseline report — the shape Figures 6–8 iterate over.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonRow<'a> {
    /// The benchmark of this row.
    pub benchmark: Benchmark,
    /// The scheme column of this row.
    pub scheme: SchemeId,
    /// The report of `(benchmark, scheme)`.
    pub report: &'a SimulationReport,
    /// The report of `(benchmark, baseline)` the row normalizes against.
    pub baseline: &'a SimulationReport,
}

/// Flattens a comparison into the row order the paper's figures plot: for
/// every benchmark, every present scheme of
/// [`SchemeComparison::SCHEME_ORDER`], each paired with the benchmark's
/// `baseline` report.  Schemes absent from the comparison are skipped;
/// a missing *baseline* is an error.
///
/// # Errors
///
/// Returns [`UnknownScheme`] when any benchmark lacks the baseline report.
pub fn comparison_rows(
    comparison: &SchemeComparison,
    baseline: SchemeId,
) -> Result<Vec<ComparisonRow<'_>>, UnknownScheme> {
    let mut rows = Vec::new();
    for &benchmark in comparison.benchmarks() {
        let baseline_report = comparison.report(benchmark, baseline)?;
        for scheme in SchemeComparison::SCHEME_ORDER {
            if let Ok(report) = comparison.report(benchmark, scheme) {
                rows.push(ComparisonRow {
                    benchmark,
                    scheme,
                    report,
                    baseline: baseline_report,
                });
            }
        }
    }
    Ok(rows)
}

/// Wraps a figure's JSON payload with its name, so every `--json` document
/// is self-describing: `{"figure": <name>, ...payload fields}`.
pub fn figure_json(name: &str, payload: JsonValue) -> JsonValue {
    let mut pairs = vec![("figure".to_string(), JsonValue::from(name))];
    match payload {
        JsonValue::Object(fields) => pairs.extend(fields),
        other => pairs.push(("data".to_string(), other)),
    }
    JsonValue::Object(pairs)
}

/// Prints one CSV row (comma-joined).
pub fn csv_row<I: IntoIterator<Item = String>>(fields: I) {
    println!("{}", fields.into_iter().collect::<Vec<_>>().join(","));
}

/// Formats a float with three decimals for CSV output.
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_target() {
        // Environment overrides are not set in the test environment.
        if std::env::var("LAD_CORES").is_err() {
            assert_eq!(num_cores(), 64);
            assert_eq!(harness_system().num_cores, 64);
        }
        if std::env::var("LAD_ACCESSES").is_err() {
            assert_eq!(accesses_per_core(), 4000);
        }
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn runner_uses_requested_trace_length() {
        let runner = harness_runner(BenchmarkSuite::quick());
        assert_eq!(runner.suite().accesses_per_core(), accesses_per_core());
    }

    #[test]
    fn comparison_rows_pair_each_scheme_with_the_baseline() {
        let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup], 120, 3);
        let runner = ExperimentRunner::new(SystemConfig::small_test(), suite).with_threads(2);
        let comparison = runner.run_paper_comparison();
        let rows = comparison_rows(&comparison, SchemeId::StaticNuca).unwrap();
        assert_eq!(rows.len(), SchemeComparison::SCHEME_ORDER.len());
        for row in &rows {
            assert_eq!(row.benchmark, Benchmark::Dedup);
            assert_eq!(row.baseline.scheme_id, SchemeId::StaticNuca);
        }
        // A baseline that was never run is a typed error.
        let err = comparison_rows(&comparison, SchemeId::Custom("NOPE")).unwrap_err();
        assert_eq!(err.scheme, SchemeId::Custom("NOPE"));
    }

    #[test]
    fn figure_json_is_self_describing() {
        let wrapped = figure_json(
            "fig6_energy",
            JsonValue::object([("rows", JsonValue::Array(vec![]))]),
        );
        assert_eq!(
            wrapped.get("figure").and_then(JsonValue::as_str),
            Some("fig6_energy")
        );
        assert!(wrapped.get("rows").is_some());
        let scalar = figure_json("x", JsonValue::from(1.0));
        assert!(scalar.get("data").is_some());
    }
}
