//! Section 2.4.1: storage overhead of the locality classifier.

use lad_bench::{emit_json, figure_json, harness_system};
use lad_common::json::JsonValue;
use lad_replication::classifier::ClassifierKind;
use lad_replication::overhead::StorageOverhead;

fn main() {
    let system = harness_system();
    let entries = system.llc_slice.num_lines(system.cache_line_bytes);
    println!(
        "Section 2.4.1: storage overhead per {} KB LLC slice ({} entries, {} cores, RT = 3)",
        system.llc_slice.capacity_bytes / 1024,
        entries,
        system.num_cores
    );
    println!(
        "{:<14} {:>16} {:>18} {:>14} {:>14} {:>20}",
        "classifier",
        "classifier KB",
        "replica-reuse KB",
        "ACKwise4 KB",
        "full-map KB",
        "overhead vs slice %"
    );
    let mut json_rows = Vec::new();
    for (label, kind) in [
        ("Limited_1", ClassifierKind::Limited(1)),
        ("Limited_3", ClassifierKind::Limited(3)),
        ("Limited_5", ClassifierKind::Limited(5)),
        ("Limited_7", ClassifierKind::Limited(7)),
        ("Complete", ClassifierKind::Complete),
    ] {
        let overhead = StorageOverhead::compute(
            kind,
            system.num_cores,
            3,
            system.ackwise_pointers,
            entries,
            system.cache_line_bytes,
        );
        println!(
            "{:<14} {:>16.1} {:>18.1} {:>14.1} {:>14.1} {:>20.1}",
            label,
            overhead.classifier_kb,
            overhead.replica_reuse_kb,
            overhead.ackwise_kb,
            overhead.full_map_kb,
            overhead.overhead_fraction_of_slice() * 100.0
        );
        json_rows.push(JsonValue::object([
            ("classifier", JsonValue::from(label)),
            ("classifier_kb", JsonValue::from(overhead.classifier_kb)),
            (
                "replica_reuse_kb",
                JsonValue::from(overhead.replica_reuse_kb),
            ),
            ("ackwise_kb", JsonValue::from(overhead.ackwise_kb)),
            ("full_map_kb", JsonValue::from(overhead.full_map_kb)),
            (
                "overhead_fraction_of_slice",
                JsonValue::from(overhead.overhead_fraction_of_slice()),
            ),
        ]));
    }
    println!();
    println!("paper-reported: Limited_3 = 13.5 KB, Complete = 96 KB, replica reuse = 1 KB,");
    println!(
        "ACKwise4 = 12 KB, full-map = 32 KB per 256 KB slice; total 14.5 KB protocol overhead."
    );

    emit_json(&figure_json(
        "sec24_storage",
        JsonValue::object([
            (
                "llc_slice_kb",
                JsonValue::from(system.llc_slice.capacity_bytes / 1024),
            ),
            ("entries", JsonValue::from(entries)),
            ("num_cores", JsonValue::from(system.num_cores)),
            ("rows", JsonValue::Array(json_rows)),
        ]),
    ));
}
