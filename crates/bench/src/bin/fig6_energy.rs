//! Figure 6: dynamic-energy breakdown per benchmark for the seven evaluated
//! configurations (S-NUCA, R-NUCA, VR, ASR, RT-1, RT-3, RT-8), normalized to
//! S-NUCA.

use lad_bench::{csv_row, f3, harness_runner};
use lad_energy::accounting::Component;
use lad_sim::experiment::SchemeComparison;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();

    println!("Figure 6: energy breakdown, normalized to S-NUCA");
    csv_row(
        ["benchmark".to_string(), "scheme".to_string(), "total(norm)".to_string()]
            .into_iter()
            .chain(Component::ALL.iter().map(|c| format!("{}(norm)", c.label()))),
    );

    for benchmark in comparison.benchmarks().to_vec() {
        let baseline_total = comparison
            .report(benchmark, "S-NUCA")
            .map(|r| r.energy.total())
            .unwrap_or(1.0);
        for scheme in SchemeComparison::SCHEME_ORDER {
            let Some(report) = comparison.report(benchmark, scheme) else { continue };
            let mut fields = vec![
                benchmark.label().to_string(),
                scheme.to_string(),
                f3(report.energy.total() / baseline_total),
            ];
            fields.extend(
                Component::ALL
                    .iter()
                    .map(|c| f3(report.energy.component(*c) / baseline_total)),
            );
            csv_row(fields);
        }
    }

    println!();
    println!("Average normalized energy (the paper's AVERAGE bars):");
    for scheme in SchemeComparison::SCHEME_ORDER {
        println!(
            "  {:<8} {:.3}",
            scheme,
            comparison.average_normalized_energy(scheme, "S-NUCA")
        );
    }
}
