//! Figure 6: dynamic-energy breakdown per benchmark for the seven evaluated
//! configurations (S-NUCA, R-NUCA, VR, ASR, RT-1, RT-3, RT-8), normalized to
//! S-NUCA.

use lad_bench::{comparison_rows, csv_row, emit_json, f3, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_energy::accounting::Component;
use lad_replication::scheme::SchemeId;
use lad_sim::experiment::SchemeComparison;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();
    let baseline = SchemeId::StaticNuca;
    let rows = comparison_rows(&comparison, baseline).expect("S-NUCA baseline must be present");

    println!("Figure 6: energy breakdown, normalized to S-NUCA");
    csv_row(
        [
            "benchmark".to_string(),
            "scheme".to_string(),
            "total(norm)".to_string(),
        ]
        .into_iter()
        .chain(
            Component::ALL
                .iter()
                .map(|c| format!("{}(norm)", c.label())),
        ),
    );

    for row in &rows {
        let baseline_total = row.baseline.energy.total();
        let mut fields = vec![
            row.benchmark.label().to_string(),
            row.scheme.label(),
            f3(row.report.energy.total() / baseline_total),
        ];
        fields.extend(
            Component::ALL
                .iter()
                .map(|c| f3(row.report.energy.component(*c) / baseline_total)),
        );
        csv_row(fields);
    }

    println!();
    println!("Average normalized energy (the paper's AVERAGE bars):");
    let mut averages = Vec::new();
    for scheme in SchemeComparison::SCHEME_ORDER {
        let average = comparison
            .average_normalized_energy(scheme, baseline)
            .unwrap_or_else(|err| panic!("figure 6 average: {err}"));
        println!("  {:<8} {average:.3}", scheme.label());
        averages.push(JsonValue::object([
            ("scheme", JsonValue::from(scheme.label())),
            ("normalized_energy", JsonValue::from(average)),
        ]));
    }

    emit_json(&figure_json(
        "fig6_energy",
        JsonValue::object([
            ("baseline", JsonValue::from(baseline.label())),
            ("averages", JsonValue::Array(averages)),
            ("comparison", comparison.to_json()),
        ]),
    ));
}
