//! Table 2: the benchmark suite and its problem sizes, together with the
//! synthetic-profile parameters used to stand in for each application.

use lad_bench::{csv_row, emit_json, figure_json, validate_json_target};
use lad_common::json::JsonValue;
use lad_trace::benchmarks::Benchmark;

fn main() {
    validate_json_target();
    println!("Table 2: benchmarks and problem sizes (synthetic stand-ins)");
    csv_row([
        "suite".to_string(),
        "benchmark".to_string(),
        "problem_size".to_string(),
        "footprint_lines_64c".to_string(),
        "dominant_class".to_string(),
    ]);
    let mut json_rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let profile = benchmark.profile();
        let weights = profile.class_mix.weights();
        let labels = ["instruction", "private", "shared-RO", "shared-RW"];
        let dominant = labels[weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)];
        csv_row([
            benchmark.suite_name().to_string(),
            benchmark.label().to_string(),
            profile.problem_size.to_string(),
            profile.footprint_lines(64).to_string(),
            dominant.to_string(),
        ]);
        json_rows.push(JsonValue::object([
            ("suite", JsonValue::from(benchmark.suite_name())),
            ("benchmark", JsonValue::from(benchmark.label())),
            ("problem_size", JsonValue::from(profile.problem_size)),
            (
                "footprint_lines_64c",
                JsonValue::from(profile.footprint_lines(64)),
            ),
            ("dominant_class", JsonValue::from(dominant)),
        ]));
    }

    emit_json(&figure_json(
        "table2_benchmarks",
        JsonValue::object([("rows", JsonValue::Array(json_rows))]),
    ));
}
