//! Figure 7: completion-time breakdown per benchmark for the seven
//! configurations, normalized to S-NUCA.

use lad_bench::{csv_row, f3, harness_runner};
use lad_sim::experiment::SchemeComparison;
use lad_sim::metrics::LatencyBreakdown;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();

    println!("Figure 7: completion-time breakdown, normalized to S-NUCA");
    csv_row(
        ["benchmark".to_string(), "scheme".to_string(), "completion(norm)".to_string()]
            .into_iter()
            .chain(LatencyBreakdown::LABELS.iter().map(|l| format!("{l}(norm)"))),
    );

    for benchmark in comparison.benchmarks().to_vec() {
        let baseline_total = comparison
            .report(benchmark, "S-NUCA")
            .map(|r| r.latency.total() as f64)
            .unwrap_or(1.0);
        for scheme in SchemeComparison::SCHEME_ORDER {
            let Some(report) = comparison.report(benchmark, scheme) else { continue };
            let mut fields = vec![
                benchmark.label().to_string(),
                scheme.to_string(),
                f3(comparison.normalized_completion_time(benchmark, scheme, "S-NUCA")),
            ];
            fields.extend(report.latency.values().iter().map(|v| f3(*v as f64 / baseline_total)));
            csv_row(fields);
        }
    }

    println!();
    println!("Average normalized completion time (the paper's AVERAGE bars):");
    for scheme in SchemeComparison::SCHEME_ORDER {
        println!(
            "  {:<8} {:.3}",
            scheme,
            comparison.average_normalized_completion_time(scheme, "S-NUCA")
        );
    }
}
