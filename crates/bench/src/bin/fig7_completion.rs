//! Figure 7: completion-time breakdown per benchmark for the seven
//! configurations, normalized to S-NUCA.

use lad_bench::{comparison_rows, csv_row, emit_json, f3, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_replication::scheme::SchemeId;
use lad_sim::experiment::SchemeComparison;
use lad_sim::metrics::LatencyBreakdown;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();
    let baseline = SchemeId::StaticNuca;
    let rows = comparison_rows(&comparison, baseline).expect("S-NUCA baseline must be present");

    println!("Figure 7: completion-time breakdown, normalized to S-NUCA");
    csv_row(
        [
            "benchmark".to_string(),
            "scheme".to_string(),
            "completion(norm)".to_string(),
        ]
        .into_iter()
        .chain(
            LatencyBreakdown::LABELS
                .iter()
                .map(|l| format!("{l}(norm)")),
        ),
    );

    for row in &rows {
        let baseline_total = row.baseline.latency.total() as f64;
        let normalized_completion = comparison
            .normalized_completion_time(row.benchmark, row.scheme, baseline)
            .unwrap_or_else(|err| panic!("figure 7 normalization: {err}"));
        let mut fields = vec![
            row.benchmark.label().to_string(),
            row.scheme.label(),
            f3(normalized_completion),
        ];
        fields.extend(
            row.report
                .latency
                .values()
                .iter()
                .map(|v| f3(*v as f64 / baseline_total)),
        );
        csv_row(fields);
    }

    println!();
    println!("Average normalized completion time (the paper's AVERAGE bars):");
    let mut averages = Vec::new();
    for scheme in SchemeComparison::SCHEME_ORDER {
        let average = comparison
            .average_normalized_completion_time(scheme, baseline)
            .unwrap_or_else(|err| panic!("figure 7 average: {err}"));
        println!("  {:<8} {average:.3}", scheme.label());
        averages.push(JsonValue::object([
            ("scheme", JsonValue::from(scheme.label())),
            ("normalized_completion_time", JsonValue::from(average)),
        ]));
    }

    emit_json(&figure_json(
        "fig7_completion",
        JsonValue::object([
            ("baseline", JsonValue::from(baseline.label())),
            ("averages", JsonValue::Array(averages)),
            ("comparison", comparison.to_json()),
        ]),
    ));
}
