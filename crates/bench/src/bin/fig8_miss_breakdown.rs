//! Figure 8: L1 cache-miss-type breakdown (LLC replica hits, LLC home hits,
//! off-chip misses) per benchmark and configuration.

use lad_bench::{csv_row, f3, harness_runner};
use lad_sim::experiment::SchemeComparison;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();

    println!("Figure 8: L1 miss type breakdown (fractions of all L1 misses)");
    csv_row([
        "benchmark".to_string(),
        "scheme".to_string(),
        "llc_replica_hits".to_string(),
        "llc_home_hits".to_string(),
        "offchip_misses".to_string(),
    ]);
    for benchmark in comparison.benchmarks().to_vec() {
        for scheme in SchemeComparison::SCHEME_ORDER {
            let Some(report) = comparison.report(benchmark, scheme) else { continue };
            let misses = report.misses.l1_misses().max(1) as f64;
            csv_row([
                benchmark.label().to_string(),
                scheme.to_string(),
                f3(report.misses.llc_replica_hits as f64 / misses),
                f3(report.misses.llc_home_hits as f64 / misses),
                f3(report.misses.offchip_misses as f64 / misses),
            ]);
        }
    }
}
