//! Figure 8: L1 cache-miss-type breakdown (LLC replica hits, LLC home hits,
//! off-chip misses) per benchmark and configuration.

use lad_bench::{comparison_rows, csv_row, emit_json, f3, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_replication::scheme::SchemeId;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();
    let rows = comparison_rows(&comparison, SchemeId::StaticNuca)
        .expect("S-NUCA baseline must be present");

    println!("Figure 8: L1 miss type breakdown (fractions of all L1 misses)");
    csv_row([
        "benchmark".to_string(),
        "scheme".to_string(),
        "llc_replica_hits".to_string(),
        "llc_home_hits".to_string(),
        "offchip_misses".to_string(),
    ]);
    let mut json_rows = Vec::new();
    for row in &rows {
        let misses = row.report.misses.l1_misses().max(1) as f64;
        let replica = row.report.misses.llc_replica_hits as f64 / misses;
        let home = row.report.misses.llc_home_hits as f64 / misses;
        let offchip = row.report.misses.offchip_misses as f64 / misses;
        csv_row([
            row.benchmark.label().to_string(),
            row.scheme.label(),
            f3(replica),
            f3(home),
            f3(offchip),
        ]);
        json_rows.push(JsonValue::object([
            ("benchmark", JsonValue::from(row.benchmark.label())),
            ("scheme", JsonValue::from(row.scheme.label())),
            ("llc_replica_hits", JsonValue::from(replica)),
            ("llc_home_hits", JsonValue::from(home)),
            ("offchip_misses", JsonValue::from(offchip)),
        ]));
    }

    emit_json(&figure_json(
        "fig8_miss_breakdown",
        JsonValue::object([("rows", JsonValue::Array(json_rows))]),
    ));
}
