//! Section 4.2: the paper's sharer-aware modified-LRU LLC replacement policy
//! versus plain LRU, under the locality-aware protocol at RT = 3.
//!
//! The paper reports 15% / 5% lower energy and 5% / 2% lower completion time
//! for BLACKSCHOLES and FACESIM, with the other benchmarks unchanged.

use lad_bench::{csv_row, emit_json, f3, figure_json, harness_runner};
use lad_cache::llc_slice::LlcReplacementPolicy;
use lad_common::json::JsonValue;
use lad_replication::config::ReplicationConfig;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());

    println!("Section 4.2: sharer-aware modified LRU vs plain LRU (RT-3)");
    csv_row([
        "benchmark".to_string(),
        "energy(modified/plain)".to_string(),
        "time(modified/plain)".to_string(),
        "back_invalidations(modified)".to_string(),
        "back_invalidations(plain)".to_string(),
    ]);
    let mut json_rows = Vec::new();
    for benchmark in runner.suite().benchmarks().to_vec() {
        let modified = runner.run_one(
            benchmark,
            &ReplicationConfig::locality_aware(3)
                .with_llc_replacement(LlcReplacementPolicy::SharerAwareLru),
        );
        let plain = runner.run_one(
            benchmark,
            &ReplicationConfig::locality_aware(3)
                .with_llc_replacement(LlcReplacementPolicy::PlainLru),
        );
        let energy_ratio = modified.energy.total() / plain.energy.total();
        let time_ratio =
            modified.completion_time.value() as f64 / plain.completion_time.value() as f64;
        csv_row([
            benchmark.label().to_string(),
            f3(energy_ratio),
            f3(time_ratio),
            modified.back_invalidations.to_string(),
            plain.back_invalidations.to_string(),
        ]);
        json_rows.push(JsonValue::object([
            ("benchmark", JsonValue::from(benchmark.label())),
            ("energy_ratio", JsonValue::from(energy_ratio)),
            ("completion_time_ratio", JsonValue::from(time_ratio)),
            (
                "back_invalidations_modified",
                JsonValue::from(modified.back_invalidations),
            ),
            (
                "back_invalidations_plain",
                JsonValue::from(plain.back_invalidations),
            ),
        ]));
    }

    emit_json(&figure_json(
        "sec42_replacement",
        JsonValue::object([("rows", JsonValue::Array(json_rows))]),
    ));
}
