//! Section 4.2: the paper's sharer-aware modified-LRU LLC replacement policy
//! versus plain LRU, under the locality-aware protocol at RT = 3.
//!
//! The paper reports 15% / 5% lower energy and 5% / 2% lower completion time
//! for BLACKSCHOLES and FACESIM, with the other benchmarks unchanged.

use lad_bench::{csv_row, f3, harness_runner};
use lad_cache::llc_slice::LlcReplacementPolicy;
use lad_replication::config::ReplicationConfig;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());

    println!("Section 4.2: sharer-aware modified LRU vs plain LRU (RT-3)");
    csv_row([
        "benchmark".to_string(),
        "energy(modified/plain)".to_string(),
        "time(modified/plain)".to_string(),
        "back_invalidations(modified)".to_string(),
        "back_invalidations(plain)".to_string(),
    ]);
    for benchmark in runner.suite().benchmarks().to_vec() {
        let modified = runner.run_one(
            benchmark,
            &ReplicationConfig::locality_aware(3)
                .with_llc_replacement(LlcReplacementPolicy::SharerAwareLru),
        );
        let plain = runner.run_one(
            benchmark,
            &ReplicationConfig::locality_aware(3)
                .with_llc_replacement(LlcReplacementPolicy::PlainLru),
        );
        csv_row([
            benchmark.label().to_string(),
            f3(modified.energy.total() / plain.energy.total()),
            f3(modified.completion_time.value() as f64 / plain.completion_time.value() as f64),
            modified.back_invalidations.to_string(),
            plain.back_invalidations.to_string(),
        ]);
    }
}
