//! End-to-end engine throughput report: accesses per second for every
//! paper scheme at 16, 64 and 256 cores, written as `BENCH_7.json`.
//!
//! Each cell runs the BARNES workload (seed 7) through the full protocol
//! engine and records the *best* wall-clock time of `LAD_BENCH_REPS`
//! repetitions — best-of-N because simulation throughput on a shared
//! machine is noise-prone in one direction only (interference slows runs,
//! nothing speeds them up).  Each JSON cell also carries the per-rep
//! wall-clock `min_seconds` / `median_seconds` / `max_seconds` so
//! run-to-run variance is visible, not just the best.  The report also
//! embeds the pre-optimization
//! reference numbers recorded before the engine rework (commit `668b42a`,
//! same workloads, same best-of-N protocol) and the resulting speedups, so
//! the committed `BENCH_7.json` documents the before/after comparison.
//!
//! Environment:
//!
//! * `LAD_CORES` — restrict the sweep to one core count,
//! * `LAD_ACCESSES` — accesses per core (default: the per-count workloads
//!   below),
//! * `LAD_BENCH_REPS` — repetitions per cell (default 3, `--quick` 1),
//! * `LAD_THREADS` / `--threads <N>` — worker threads for the cell sweep
//!   (the flag wins; default 1 so wall-clock timings do not contend),
//! * `--quick` — CI smoke scale (8 cores, 150 accesses per core, 1 rep),
//! * `--json <path>` — write the JSON report (e.g. `BENCH_7.json`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lad_bench::{csv_row, emit_json, figure_json, quick_mode, validate_json_target};
use lad_common::config::SystemConfig;
use lad_common::json::JsonValue;
use lad_energy::model::EnergyModel;
use lad_replication::policy::SchemeRegistry;
use lad_replication::scheme::SchemeId;
use lad_sim::engine::Simulator;
use lad_trace::benchmarks::Benchmark;
use lad_trace::generator::TraceGenerator;

/// Trace seed shared by every cell (and by the pre-PR reference runs).
const SEED: u64 = 7;

/// `(cores, accesses per core)` of the standard sweep: big enough that the
/// per-access protocol cost dominates setup, small enough that the whole
/// report takes well under a minute per repetition.
const WORKLOADS: [(usize, usize); 3] = [(16, 20_000), (64, 10_000), (256, 2_500)];

/// Pre-optimization throughput (accesses per second, best-of-N) measured at
/// commit `668b42a` — the sequential engine before the heap scheduler,
/// struct-of-arrays cache and fat-LTO release profile — on the same BARNES
/// workloads.  Only S-NUCA and RT-3 were measured for the reference.
const PRE_PR_BASELINE: [(usize, &str, f64); 6] = [
    (16, "S-NUCA", 984_000.0),
    (16, "RT-3", 704_000.0),
    (64, "S-NUCA", 449_000.0),
    (64, "RT-3", 376_000.0),
    (256, "S-NUCA", 200_000.0),
    (256, "RT-3", 195_000.0),
];

fn reps() -> usize {
    let fallback = if quick_mode() { 1 } else { 3 };
    std::env::var("LAD_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
        .max(1)
}

fn sweep() -> Vec<(usize, usize)> {
    let env_cores: Option<usize> = std::env::var("LAD_CORES").ok().and_then(|v| v.parse().ok());
    let env_accesses: Option<usize> = std::env::var("LAD_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok());
    match (env_cores, quick_mode()) {
        (Some(cores), _) => vec![(cores, env_accesses.unwrap_or(1000))],
        (None, true) => vec![(8, env_accesses.unwrap_or(150))],
        (None, false) => WORKLOADS
            .iter()
            .map(|&(cores, per_core)| (cores, env_accesses.unwrap_or(per_core)))
            .collect(),
    }
}

/// The value of `--threads <N>`, if present.
fn threads_flag() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|arg| arg == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|value| value.parse().ok())
}

fn schemes() -> Vec<SchemeId> {
    if quick_mode() {
        vec![SchemeId::StaticNuca, SchemeId::Rt(3)]
    } else {
        vec![
            SchemeId::StaticNuca,
            SchemeId::ReactiveNuca,
            SchemeId::VictimReplication,
            SchemeId::asr_at_level(0.5),
            SchemeId::Rt(1),
            SchemeId::Rt(3),
            SchemeId::Rt(8),
        ]
    }
}

fn main() {
    validate_json_target();
    let registry = SchemeRegistry::builtin();
    let reps = reps();
    let schemes = schemes();

    println!(
        "Engine throughput report (BARNES seed {SEED}, best of {reps} rep{})",
        if reps == 1 { "" } else { "s" }
    );
    csv_row(
        [
            "cores",
            "scheme",
            "accesses",
            "best_seconds",
            "accesses_per_sec",
            "completion_time",
        ]
        .map(String::from),
    );

    // One job per (workload, scheme) cell; traces are generated once per
    // workload and shared.
    let mut jobs = Vec::new();
    for (cores, per_core) in sweep() {
        let system = SystemConfig::paper_default().with_num_cores(cores);
        let trace = Arc::new(
            TraceGenerator::new(Benchmark::Barnes.profile()).generate(cores, per_core, SEED),
        );
        for &scheme in &schemes {
            jobs.push((cores, system.clone(), Arc::clone(&trace), scheme));
        }
    }

    // Worker-count selection follows the workspace rule (flag, then
    // LAD_THREADS, then the default) with a default of ONE worker: timing
    // cells in parallel makes them contend for cores and understates
    // throughput, so parallelism is strictly opt-in here.  Cells are tagged
    // with their job index and merged in index order, so the report is
    // identical no matter which worker ran which cell.
    let workers = lad_common::workers::worker_count_or(threads_flag(), 1).min(jobs.len().max(1));
    if workers > 1 {
        println!("(timing with {workers} parallel workers; expect contention)");
    }
    let next_job = AtomicUsize::new(0);
    type TimedCell = (usize, usize, SchemeId, Vec<f64>, u64);
    let mut timed: Vec<(usize, TimedCell)> = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let jobs = &jobs;
                let next_job = &next_job;
                let registry = &registry;
                scope.spawn(move || {
                    let mut cells: Vec<(usize, TimedCell)> = Vec::new();
                    loop {
                        let index = next_job.fetch_add(1, Ordering::Relaxed);
                        let Some((cores, system, trace, scheme)) = jobs.get(index) else {
                            break;
                        };
                        let entry = registry.get(*scheme).unwrap_or_else(|err| {
                            panic!("builtin registry must cover the sweep: {err}")
                        });
                        let accesses = trace.total_accesses();
                        let mut rep_seconds = Vec::with_capacity(reps);
                        let mut completion = 0u64;
                        for _ in 0..reps {
                            let mut sim = Simulator::with_policy_and_energy_model(
                                system.clone(),
                                entry.config.clone(),
                                Arc::clone(&entry.policy),
                                EnergyModel::paper_default(),
                            );
                            let start = Instant::now();
                            let report = sim.run(trace);
                            rep_seconds.push(start.elapsed().as_secs_f64());
                            completion = report.completion_time.value();
                        }
                        cells.push((index, (*cores, accesses, *scheme, rep_seconds, completion)));
                    }
                    cells
                })
            })
            .collect();
        for handle in handles {
            timed.extend(
                handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic)),
            );
        }
    });
    timed.sort_unstable_by_key(|(index, _)| *index);

    let mut cells = Vec::new();
    for (_, (cores, accesses, scheme, rep_seconds, completion)) in timed {
        // min == the best-of-N headline; median/max expose run-to-run
        // variance so later perf PRs can tell noise from regression.
        let mut sorted = rep_seconds;
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let best_seconds = sorted[0];
        let max_seconds = sorted[sorted.len() - 1];
        let median_seconds = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let rate = accesses as f64 / best_seconds;
        csv_row([
            cores.to_string(),
            scheme.label(),
            accesses.to_string(),
            format!("{best_seconds:.4}"),
            format!("{rate:.0}"),
            completion.to_string(),
        ]);
        cells.push(JsonValue::object([
            ("cores", JsonValue::from(cores as f64)),
            ("scheme", JsonValue::from(scheme.label())),
            ("accesses", JsonValue::from(accesses as f64)),
            ("best_seconds", JsonValue::from(best_seconds)),
            ("min_seconds", JsonValue::from(best_seconds)),
            ("median_seconds", JsonValue::from(median_seconds)),
            ("max_seconds", JsonValue::from(max_seconds)),
            ("accesses_per_sec", JsonValue::from(rate)),
            ("completion_time", JsonValue::from(completion as f64)),
        ]));
    }

    // Speedup rows: every measured cell that has a pre-PR reference.
    let mut speedups = Vec::new();
    println!();
    println!("Speedup vs pre-optimization engine (commit 668b42a reference):");
    for cell in &cells {
        let cores = cell.get("cores").and_then(JsonValue::as_f64);
        let scheme = cell.get("scheme").and_then(JsonValue::as_str);
        let rate = cell.get("accesses_per_sec").and_then(JsonValue::as_f64);
        let (Some(cores), Some(scheme), Some(rate)) = (cores, scheme, rate) else {
            continue;
        };
        let reference = PRE_PR_BASELINE
            .iter()
            .find(|(c, s, _)| *c as f64 == cores && *s == scheme);
        if let Some(&(_, _, baseline_rate)) = reference {
            let ratio = rate / baseline_rate;
            println!("  {cores:4.0} cores {scheme:8} {ratio:5.2}x ({rate:9.0} vs {baseline_rate:9.0} acc/s)");
            speedups.push(JsonValue::object([
                ("cores", JsonValue::from(cores)),
                ("scheme", JsonValue::from(scheme)),
                ("baseline_accesses_per_sec", JsonValue::from(baseline_rate)),
                ("accesses_per_sec", JsonValue::from(rate)),
                ("speedup", JsonValue::from(ratio)),
            ]));
        }
    }
    if speedups.is_empty() {
        println!("  (no cell matches a reference workload at this scale)");
    }

    let baseline_cells: Vec<JsonValue> = PRE_PR_BASELINE
        .iter()
        .map(|&(cores, scheme, rate)| {
            JsonValue::object([
                ("cores", JsonValue::from(cores as f64)),
                ("scheme", JsonValue::from(scheme)),
                ("accesses_per_sec", JsonValue::from(rate)),
            ])
        })
        .collect();

    emit_json(&figure_json(
        "bench_report",
        JsonValue::object([
            ("benchmark", JsonValue::from(Benchmark::Barnes.label())),
            ("seed", JsonValue::from(SEED as f64)),
            ("reps", JsonValue::from(reps as f64)),
            ("cells", JsonValue::Array(cells)),
            (
                "baseline_pre_pr",
                JsonValue::object([
                    (
                        "description",
                        JsonValue::from(
                            "best-of-N accesses/sec of the sequential engine at commit 668b42a \
                             (before the heap scheduler, SoA cache arrays and fat-LTO release \
                             profile), same workloads and seed",
                        ),
                    ),
                    ("cells", JsonValue::Array(baseline_cells)),
                ]),
            ),
            ("speedups", JsonValue::Array(speedups)),
        ]),
    ));
}
