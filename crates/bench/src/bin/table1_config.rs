//! Table 1: the architectural parameters used for evaluation.

use lad_bench::{emit_json, figure_json, harness_system};
use lad_common::json::JsonValue;
use lad_replication::config::ReplicationConfig;

fn main() {
    let system = harness_system();
    let replication = ReplicationConfig::paper_default();
    println!("Table 1: architectural parameters");
    println!("{:<38} {}", "Number of cores", system.num_cores);
    println!("{:<38} In-Order, Single-Issue", "Compute pipeline per core");
    println!(
        "{:<38} {} KB, {}-way, {} cycle",
        "L1-I cache per core",
        system.l1i.capacity_bytes / 1024,
        system.l1i.associativity,
        system.l1i.access_latency()
    );
    println!(
        "{:<38} {} KB, {}-way, {} cycle",
        "L1-D cache per core",
        system.l1d.capacity_bytes / 1024,
        system.l1d.associativity,
        system.l1d.access_latency()
    );
    println!(
        "{:<38} {} KB, {}-way, {} cycle tag, {} cycle data, R-NUCA",
        "L2 (LLC) slice per core",
        system.llc_slice.capacity_bytes / 1024,
        system.llc_slice.associativity,
        system.llc_slice.tag_latency,
        system.llc_slice.data_latency
    );
    println!(
        "{:<38} Invalidation-based MESI, ACKwise{}",
        "Directory protocol", system.ackwise_pointers
    );
    println!(
        "{:<38} {} controllers, {} B/cycle each, {} cycle latency",
        "DRAM",
        system.dram.num_controllers,
        system.dram.bandwidth_bytes_per_cycle,
        system.dram.access_latency
    );
    println!(
        "{:<38} {}x{} mesh, XY routing, {}-cycle hop, {}-bit flits",
        "Electrical 2-D mesh",
        system.network.mesh_width,
        system.network.mesh_height,
        system.network.hop_latency,
        system.network.flit_width_bits
    );
    println!(
        "{:<38} {} flits",
        "Cache line",
        system.network.data_message_flits(system.cache_line_bytes) - system.network.header_flits
    );
    println!(
        "{:<38} RT = {}, {:?} classifier, cluster size {}",
        "Locality-aware replication",
        replication.replication_threshold,
        replication.classifier,
        replication.cluster_size
    );

    emit_json(&figure_json(
        "table1_config",
        JsonValue::object([
            ("num_cores", JsonValue::from(system.num_cores)),
            ("l1i_kb", JsonValue::from(system.l1i.capacity_bytes / 1024)),
            (
                "l1i_associativity",
                JsonValue::from(system.l1i.associativity),
            ),
            ("l1d_kb", JsonValue::from(system.l1d.capacity_bytes / 1024)),
            (
                "l1d_associativity",
                JsonValue::from(system.l1d.associativity),
            ),
            (
                "llc_slice_kb",
                JsonValue::from(system.llc_slice.capacity_bytes / 1024),
            ),
            (
                "llc_associativity",
                JsonValue::from(system.llc_slice.associativity),
            ),
            (
                "llc_tag_latency",
                JsonValue::from(system.llc_slice.tag_latency),
            ),
            (
                "llc_data_latency",
                JsonValue::from(system.llc_slice.data_latency),
            ),
            ("ackwise_pointers", JsonValue::from(system.ackwise_pointers)),
            (
                "dram_controllers",
                JsonValue::from(system.dram.num_controllers),
            ),
            (
                "dram_bandwidth_bytes_per_cycle",
                JsonValue::from(system.dram.bandwidth_bytes_per_cycle),
            ),
            (
                "dram_access_latency",
                JsonValue::from(system.dram.access_latency),
            ),
            ("mesh_width", JsonValue::from(system.network.mesh_width)),
            ("mesh_height", JsonValue::from(system.network.mesh_height)),
            ("hop_latency", JsonValue::from(system.network.hop_latency)),
            (
                "flit_width_bits",
                JsonValue::from(system.network.flit_width_bits),
            ),
            (
                "replication_threshold",
                JsonValue::from(replication.replication_threshold),
            ),
            (
                "classifier",
                JsonValue::from(format!("{:?}", replication.classifier)),
            ),
            ("cluster_size", JsonValue::from(replication.cluster_size)),
        ]),
    ));
}
