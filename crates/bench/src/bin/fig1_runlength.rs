//! Figure 1: distribution of LLC accesses by data class and run-length
//! bucket ([1-2], [3-9], [>=10]) for every benchmark, measured on the
//! Static-NUCA baseline (replication disabled), exactly as the paper's
//! characterization does.

use lad_bench::{csv_row, emit_json, f3, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_common::types::DataClass;
use lad_replication::config::ReplicationConfig;
use lad_trace::suite::BenchmarkSuite;

const BUCKETS: [&str; 3] = ["1-2", "3-9", ">=10"];

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    println!("Figure 1: LLC access distribution by data class and run-length");
    csv_row(
        ["benchmark".to_string()]
            .into_iter()
            .chain(DataClass::ALL.iter().flat_map(|class| {
                BUCKETS
                    .iter()
                    .map(move |bucket| format!("{} [{}]", class.label(), bucket))
            })),
    );

    let baseline = ReplicationConfig::static_nuca();
    let mut json_rows = Vec::new();
    for benchmark in runner.suite().benchmarks().to_vec() {
        let report = runner.run_one(benchmark, &baseline);
        let distribution = report.run_lengths.distribution();
        let mut fields = vec![benchmark.label().to_string()];
        let mut json_cells = Vec::new();
        for (class, buckets) in distribution {
            fields.extend(buckets.iter().map(|fraction| f3(*fraction)));
            for (bucket, fraction) in BUCKETS.iter().zip(buckets) {
                json_cells.push(JsonValue::object([
                    ("class", JsonValue::from(class.label())),
                    ("bucket", JsonValue::from(*bucket)),
                    ("fraction", JsonValue::from(fraction)),
                ]));
            }
        }
        csv_row(fields);
        json_rows.push(JsonValue::object([
            ("benchmark", JsonValue::from(benchmark.label())),
            ("cells", JsonValue::Array(json_cells)),
        ]));
    }

    emit_json(&figure_json(
        "fig1_runlength",
        JsonValue::object([("rows", JsonValue::Array(json_rows))]),
    ));
}
