//! Figure 1: distribution of LLC accesses by data class and run-length
//! bucket ([1-2], [3-9], [>=10]) for every benchmark, measured on the
//! Static-NUCA baseline (replication disabled), exactly as the paper's
//! characterization does.

use lad_bench::{csv_row, f3, harness_runner};
use lad_common::types::DataClass;
use lad_replication::config::ReplicationConfig;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    println!("Figure 1: LLC access distribution by data class and run-length");
    csv_row(
        ["benchmark".to_string()]
            .into_iter()
            .chain(DataClass::ALL.iter().flat_map(|class| {
                ["1-2", "3-9", ">=10"]
                    .iter()
                    .map(move |bucket| format!("{} [{}]", class.label(), bucket))
            })),
    );

    let baseline = ReplicationConfig::static_nuca();
    for benchmark in runner.suite().benchmarks().to_vec() {
        let report = runner.run_one(benchmark, &baseline);
        let distribution = report.run_lengths.distribution();
        let mut fields = vec![benchmark.label().to_string()];
        for (_, buckets) in distribution {
            fields.extend(buckets.iter().map(|fraction| f3(*fraction)));
        }
        csv_row(fields);
    }
}
