//! The headline result (abstract / Section 4.1): average energy and
//! completion-time reduction of the locality-aware protocol (RT-3) versus
//! Victim Replication, ASR, R-NUCA and S-NUCA across the benchmark suite.
//!
//! Paper-reported values: energy ↓ 16%, 14%, 13%, 21% and completion time
//! ↓ 4%, 9%, 6%, 13% versus VR, ASR, R-NUCA, S-NUCA respectively.

use lad_bench::{emit_json, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_replication::scheme::SchemeId;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();
    let scheme = SchemeId::Rt(3);

    println!("Headline: RT-3 vs the four baselines (averaged over the suite)");
    println!(
        "{:<10} {:>22} {:>26}",
        "baseline", "energy reduction (%)", "completion-time reduction (%)"
    );
    let mut json_rows = Vec::new();
    for baseline in [
        SchemeId::VictimReplication,
        SchemeId::Asr,
        SchemeId::ReactiveNuca,
        SchemeId::StaticNuca,
    ] {
        let (energy, time) = comparison
            .reduction_vs(scheme, baseline)
            .unwrap_or_else(|err| panic!("headline comparison: {err}"));
        println!("{:<10} {energy:>22.1} {time:>26.1}", baseline.label());
        json_rows.push(JsonValue::object([
            ("baseline", JsonValue::from(baseline.label())),
            ("energy_reduction_pct", JsonValue::from(energy)),
            ("completion_time_reduction_pct", JsonValue::from(time)),
        ]));
    }
    println!();
    println!("paper-reported: VR 16/4, ASR 14/9, R-NUCA 13/6, S-NUCA 21/13 (energy%/time%)");

    emit_json(&figure_json(
        "headline_summary",
        JsonValue::object([
            ("scheme", JsonValue::from(scheme.label())),
            ("reductions", JsonValue::Array(json_rows)),
            ("comparison", comparison.to_json()),
        ]),
    ));
}
