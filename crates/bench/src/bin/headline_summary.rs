//! The headline result (abstract / Section 4.1): average energy and
//! completion-time reduction of the locality-aware protocol (RT-3) versus
//! Victim Replication, ASR, R-NUCA and S-NUCA across the benchmark suite.
//!
//! Paper-reported values: energy ↓ 16%, 14%, 13%, 21% and completion time
//! ↓ 4%, 9%, 6%, 13% versus VR, ASR, R-NUCA, S-NUCA respectively.

use lad_bench::harness_runner;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::full());
    let comparison = runner.run_paper_comparison();

    println!("Headline: RT-3 vs the four baselines (averaged over the suite)");
    println!("{:<10} {:>22} {:>26}", "baseline", "energy reduction (%)", "completion-time reduction (%)");
    for baseline in ["VR", "ASR", "R-NUCA", "S-NUCA"] {
        let (energy, time) = comparison.reduction_vs("RT-3", baseline);
        println!("{baseline:<10} {energy:>22.1} {time:>26.1}");
    }
    println!();
    println!("paper-reported: VR 16/4, ASR 14/9, R-NUCA 13/6, S-NUCA 21/13 (energy%/time%)");
}
