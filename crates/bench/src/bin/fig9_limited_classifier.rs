//! Figure 9: energy and completion time of the Limited_k classifier
//! (k = 1, 3, 5, 7) normalized to the Complete (k = 64) classifier, at the
//! paper's optimum RT = 3, on the Figure 9 benchmark subset.

use lad_bench::{csv_row, emit_json, f3, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_common::stats::geometric_mean;
use lad_replication::classifier::ClassifierKind;
use lad_replication::config::ReplicationConfig;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::figure9());
    let ks = [1usize, 3, 5, 7];

    println!("Figure 9: Limited_k classifier vs Complete classifier (RT = 3)");
    csv_row(
        ["benchmark".to_string()]
            .into_iter()
            .chain(ks.iter().map(|k| format!("energy k={k}")))
            .chain(["energy k=64".to_string()])
            .chain(ks.iter().map(|k| format!("time k={k}")))
            .chain(["time k=64".to_string()]),
    );

    let mut energy_ratios: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
    let mut time_ratios: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
    let mut json_rows = Vec::new();

    for benchmark in runner.suite().benchmarks().to_vec() {
        let complete = runner.run_one(
            benchmark,
            &ReplicationConfig::locality_aware(3).with_classifier(ClassifierKind::Complete),
        );
        let mut energy_fields = Vec::new();
        let mut time_fields = Vec::new();
        let mut json_cells = Vec::new();
        for (i, k) in ks.iter().enumerate() {
            let report = runner.run_one(
                benchmark,
                &ReplicationConfig::locality_aware(3).with_classifier(ClassifierKind::Limited(*k)),
            );
            let energy_ratio = report.energy.total() / complete.energy.total();
            let time_ratio =
                report.completion_time.value() as f64 / complete.completion_time.value() as f64;
            energy_ratios[i].push(energy_ratio);
            time_ratios[i].push(time_ratio);
            energy_fields.push(f3(energy_ratio));
            time_fields.push(f3(time_ratio));
            json_cells.push(JsonValue::object([
                ("k", JsonValue::from(*k)),
                ("normalized_energy", JsonValue::from(energy_ratio)),
                ("normalized_completion_time", JsonValue::from(time_ratio)),
            ]));
        }
        let mut fields = vec![benchmark.label().to_string()];
        fields.extend(energy_fields);
        fields.push(f3(1.0));
        fields.extend(time_fields);
        fields.push(f3(1.0));
        csv_row(fields);
        json_rows.push(JsonValue::object([
            ("benchmark", JsonValue::from(benchmark.label())),
            ("cells", JsonValue::Array(json_cells)),
        ]));
    }

    println!();
    println!("Geometric means (the paper's GEOMEAN bars):");
    let mut json_geomeans = Vec::new();
    for (i, k) in ks.iter().enumerate() {
        let energy = geometric_mean(&energy_ratios[i]).unwrap_or(1.0);
        let time = geometric_mean(&time_ratios[i]).unwrap_or(1.0);
        println!("  k={k}: energy {energy:.3}, completion time {time:.3}");
        json_geomeans.push(JsonValue::object([
            ("k", JsonValue::from(*k)),
            ("normalized_energy", JsonValue::from(energy)),
            ("normalized_completion_time", JsonValue::from(time)),
        ]));
    }
    println!("  k=64: energy 1.000, completion time 1.000 (reference)");

    emit_json(&figure_json(
        "fig9_limited_classifier",
        JsonValue::object([
            ("rows", JsonValue::Array(json_rows)),
            ("geomeans", JsonValue::Array(json_geomeans)),
        ]),
    ));
}
