//! `lad-trace` — record, replay, inspect and convert LADT memory-access
//! traces.
//!
//! ```text
//! lad-trace record  --out <DIR> [--suite quick|full|figure9|figure10]
//!                   [--cores N] [--accesses N] [--seed N]
//! lad-trace replay  <FILE.ladt> --scheme <SCHEME> [--json <PATH>]
//! lad-trace inspect <FILE.ladt>
//! lad-trace convert --to text <IN.ladt> <OUT.txt>
//! lad-trace convert --to ladt <IN.txt> <OUT.ladt> [--name NAME] [--cores N] [--seed N]
//! ```
//!
//! `record` captures a benchmark suite as one `.ladt` file per benchmark;
//! `replay` streams a file through the full simulator under any scheme of
//! the registry (`S-NUCA`, `R-NUCA`, `VR`, `ASR-0.75`, `RT-3`, ...) and
//! prints a report (plus machine-readable JSON with `--json`); `inspect`
//! prints the header and per-core stream statistics without simulating;
//! `convert` bridges the plain-text `core addr is_write` interchange form.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lad_common::config::SystemConfig;
use lad_replication::scheme::SchemeId;
use lad_sim::experiment::ExperimentRunner;
use lad_sim::metrics::SimulationReport;
use lad_trace::suite::BenchmarkSuite;
use lad_traceio::reader::TraceReader;
use lad_traceio::suite::record_suite;
use lad_traceio::text::{ladt_to_text, scan_text_cores, text_to_ladt};
use lad_traceio::TraceHeader;

const USAGE: &str = "\
lad-trace: record, replay, inspect and convert LADT memory-access traces

USAGE:
  lad-trace record  --out <DIR> [--suite quick|full|figure9|figure10]
                    [--cores N] [--accesses N] [--seed N]
  lad-trace replay  <FILE.ladt> --scheme <SCHEME> [--json <PATH>]
  lad-trace inspect <FILE.ladt>
  lad-trace convert --to text <IN.ladt> <OUT.txt>
  lad-trace convert --to ladt <IN.txt> <OUT.ladt> [--name NAME] [--cores N] [--seed N]

Schemes are the registry labels: S-NUCA, R-NUCA, VR, ASR-<level>, RT-<k>.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "record" => cmd_record(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("lad-trace: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(index) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if index + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(index + 1);
    args.remove(index);
    Ok(Some(value))
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{what} must be a number, got {value:?}"))
}

fn no_leftovers(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(extra) => Err(format!("unexpected argument {extra:?}\n\n{USAGE}")),
        None => Ok(()),
    }
}

fn suite_by_name(name: &str) -> Result<BenchmarkSuite, String> {
    match name {
        "quick" => Ok(BenchmarkSuite::quick()),
        "full" => Ok(BenchmarkSuite::full()),
        "figure9" => Ok(BenchmarkSuite::figure9()),
        "figure10" => Ok(BenchmarkSuite::figure10()),
        other => Err(format!(
            "unknown suite {other:?} (expected quick|full|figure9|figure10)"
        )),
    }
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let out = take_flag(&mut args, "--out")?.ok_or("record requires --out <DIR>")?;
    let mut suite =
        suite_by_name(&take_flag(&mut args, "--suite")?.unwrap_or_else(|| "quick".into()))?;
    let cores = match take_flag(&mut args, "--cores")? {
        Some(v) => parse_number(&v, "--cores")?,
        None => 8usize,
    };
    if let Some(accesses) = take_flag(&mut args, "--accesses")? {
        suite = suite.with_accesses_per_core(parse_number(&accesses, "--accesses")?);
    }
    if let Some(seed) = take_flag(&mut args, "--seed")? {
        suite = suite.with_seed(parse_number(&seed, "--seed")?);
    }
    no_leftovers(&args)?;

    let dir = PathBuf::from(out);
    let recorded = record_suite(&suite, cores, &dir).map_err(|e| e.to_string())?;
    for entry in &recorded {
        let bytes = std::fs::metadata(&entry.path).map(|m| m.len()).unwrap_or(0);
        println!(
            "recorded {:<12} -> {} ({} bytes)",
            entry.benchmark,
            entry.path.display(),
            bytes
        );
    }
    println!(
        "{} benchmarks, {} cores, {} accesses/core, seed 0x{:x}",
        recorded.len(),
        cores,
        suite.accesses_per_core(),
        suite.seed()
    );
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let scheme_label =
        take_flag(&mut args, "--scheme")?.ok_or("replay requires --scheme <SCHEME>")?;
    let json = take_flag(&mut args, "--json")?;
    if args.len() != 1 {
        return Err(format!("replay takes exactly one trace file\n\n{USAGE}"));
    }
    let path = PathBuf::from(args.remove(0));

    let header = read_header(&path)?;
    let scheme = SchemeId::parse(&scheme_label);
    let system = SystemConfig::paper_default().with_num_cores(header.num_cores);
    // The suite is irrelevant for replay; the trace file is the workload.
    let runner = ExperimentRunner::new(system, BenchmarkSuite::quick());
    let report = runner
        .replay_file(&path, scheme)
        .map_err(|e| e.to_string())?;
    print_report(&report);
    if let Some(json_path) = json {
        lad_common::fs::atomic_write(
            std::path::Path::new(&json_path),
            report.to_json().pretty().as_bytes(),
        )
        .map_err(|e| format!("cannot write {json_path}: {e}"))?;
        eprintln!("wrote JSON report to {json_path}");
    }
    Ok(())
}

fn read_header(path: &Path) -> Result<TraceHeader, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let reader = TraceReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    Ok(reader.header().clone())
}

fn print_report(report: &SimulationReport) {
    println!("benchmark        {}", report.benchmark);
    println!("scheme           {}", report.scheme);
    println!("accesses         {}", report.total_accesses);
    println!("completion       {}", report.completion_time);
    println!(
        "l1 hit rate      {:.2}%",
        100.0 * report.misses.l1_hits as f64 / report.total_accesses.max(1) as f64
    );
    println!("replica hits     {}", report.misses.llc_replica_hits);
    println!("home hits        {}", report.misses.llc_home_hits);
    println!("off-chip misses  {}", report.misses.offchip_misses);
    println!("replicas created {}", report.replicas_created);
    println!("energy           {:.1} nJ", report.energy.total() / 1000.0);
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    if args.len() != 1 {
        return Err(format!("inspect takes exactly one trace file\n\n{USAGE}"));
    }
    let path = PathBuf::from(&args[0]);
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let file = File::open(&path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut reader = TraceReader::new(BufReader::new(file)).map_err(|e| e.to_string())?;
    let header = reader.header().clone();
    println!("file        {} ({} bytes)", path.display(), bytes);
    println!("format      LADT v{}", lad_traceio::FORMAT_VERSION);
    println!("benchmark   {}", header.benchmark);
    println!("cores       {}", header.num_cores);
    println!("seed        0x{:x}", header.seed);

    #[derive(Default, Clone, Copy)]
    struct CoreStats {
        accesses: u64,
        reads: u64,
        writes: u64,
        ifetches: u64,
        min_address: u64,
        max_address: u64,
    }
    let mut stats = vec![CoreStats::default(); header.num_cores];
    let mut digest = lad_traceio::digest::DigestBuilder::new(header.num_cores, &header.benchmark);
    loop {
        match reader.next_access() {
            Ok(Some(access)) => {
                digest.record(&access);
                let s = &mut stats[access.core.index()];
                if s.accesses == 0 {
                    s.min_address = access.address.value();
                    s.max_address = access.address.value();
                } else {
                    s.min_address = s.min_address.min(access.address.value());
                    s.max_address = s.max_address.max(access.address.value());
                }
                s.accesses += 1;
                if access.op.is_instruction() {
                    s.ifetches += 1;
                } else if access.op.is_write() {
                    s.writes += 1;
                } else {
                    s.reads += 1;
                }
            }
            Ok(None) => break,
            Err(err) => return Err(err.to_string()),
        }
    }
    let total = reader.accesses_read();
    println!("digest      {}", digest.finish().to_hex());
    println!("accesses    {total}");
    if total > 0 {
        println!("bytes/acc   {:.2}", bytes as f64 / total as f64);
    }
    println!("core  accesses     reads    writes  ifetches  address range");
    for (core, s) in stats.iter().enumerate() {
        println!(
            "{core:>4}  {:>8}  {:>8}  {:>8}  {:>8}  0x{:x}..0x{:x}",
            s.accesses, s.reads, s.writes, s.ifetches, s.min_address, s.max_address
        );
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let to = take_flag(&mut args, "--to")?.ok_or("convert requires --to ladt|text")?;
    let name = take_flag(&mut args, "--name")?.unwrap_or_else(|| "EXTERNAL".into());
    let cores = take_flag(&mut args, "--cores")?;
    let seed = match take_flag(&mut args, "--seed")? {
        Some(v) => parse_number(&v, "--seed")?,
        None => 0u64,
    };
    if args.len() != 2 {
        return Err(format!(
            "convert takes an input and an output path\n\n{USAGE}"
        ));
    }
    let (input, output) = (PathBuf::from(args.remove(0)), PathBuf::from(args.remove(0)));
    let open_input = || -> Result<BufReader<File>, String> {
        Ok(BufReader::new(File::open(&input).map_err(|e| {
            format!("cannot open {}: {e}", input.display())
        })?))
    };
    // Conversions stream through `atomic_stream` (temp file + fsync +
    // rename), so an interrupted convert never leaves a torn output file.
    match to.as_str() {
        "text" => {
            let reader = open_input()?;
            let written = lad_common::fs::atomic_stream(&output, |file| {
                ladt_to_text(reader, BufWriter::new(file)).map_err(std::io::Error::other)
            })
            .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
            println!("converted {written} accesses to text: {}", output.display());
        }
        "ladt" => {
            let num_cores = match cores {
                Some(v) => parse_number(&v, "--cores")?,
                None => scan_text_cores(open_input()?).map_err(|e| e.to_string())?,
            };
            let header = TraceHeader::new(num_cores, name, seed);
            let reader = open_input()?;
            let written = lad_common::fs::atomic_stream(&output, |file| {
                text_to_ladt(reader, BufWriter::new(file), header).map_err(std::io::Error::other)
            })
            .map_err(|e| format!("cannot write {}: {e}", output.display()))?;
            println!(
                "converted {written} accesses ({num_cores} cores) to LADT: {}",
                output.display()
            );
        }
        other => {
            return Err(format!(
                "unknown conversion target {other:?} (expected ladt|text)"
            ))
        }
    }
    Ok(())
}
