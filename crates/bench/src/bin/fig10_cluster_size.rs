//! Figure 10: energy and completion time of cluster-level replication at
//! cluster sizes 1, 4, 16 and 64, normalized to cluster size 1 (the paper's
//! chosen configuration), at RT = 3, on the Figure 10 benchmark subset.

use lad_bench::{csv_row, emit_json, f3, figure_json, harness_runner};
use lad_common::json::JsonValue;
use lad_common::stats::geometric_mean;
use lad_replication::config::ReplicationConfig;
use lad_trace::suite::BenchmarkSuite;

fn main() {
    let runner = harness_runner(BenchmarkSuite::figure10());
    let cluster_sizes = [1usize, 4, 16, 64];

    println!("Figure 10: cluster-level replication (RT = 3), normalized to C-1");
    csv_row(
        ["benchmark".to_string()]
            .into_iter()
            .chain(cluster_sizes.iter().map(|c| format!("energy C-{c}")))
            .chain(cluster_sizes.iter().map(|c| format!("time C-{c}"))),
    );

    let mut energy_ratios: Vec<Vec<f64>> = vec![Vec::new(); cluster_sizes.len()];
    let mut time_ratios: Vec<Vec<f64>> = vec![Vec::new(); cluster_sizes.len()];
    let mut json_rows = Vec::new();

    for benchmark in runner.suite().benchmarks().to_vec() {
        let reference = runner.run_one(
            benchmark,
            &ReplicationConfig::locality_aware(3).with_cluster_size(1),
        );
        let mut energy_fields = Vec::new();
        let mut time_fields = Vec::new();
        let mut json_cells = Vec::new();
        for (i, cluster) in cluster_sizes.iter().enumerate() {
            let report = runner.run_one(
                benchmark,
                &ReplicationConfig::locality_aware(3).with_cluster_size(*cluster),
            );
            let energy_ratio = report.energy.total() / reference.energy.total();
            let time_ratio =
                report.completion_time.value() as f64 / reference.completion_time.value() as f64;
            energy_ratios[i].push(energy_ratio);
            time_ratios[i].push(time_ratio);
            energy_fields.push(f3(energy_ratio));
            time_fields.push(f3(time_ratio));
            json_cells.push(JsonValue::object([
                ("cluster_size", JsonValue::from(*cluster)),
                ("normalized_energy", JsonValue::from(energy_ratio)),
                ("normalized_completion_time", JsonValue::from(time_ratio)),
            ]));
        }
        let mut fields = vec![benchmark.label().to_string()];
        fields.extend(energy_fields);
        fields.extend(time_fields);
        csv_row(fields);
        json_rows.push(JsonValue::object([
            ("benchmark", JsonValue::from(benchmark.label())),
            ("cells", JsonValue::Array(json_cells)),
        ]));
    }

    println!();
    println!("Geometric means (the paper's GEOMEAN bars):");
    let mut json_geomeans = Vec::new();
    for (i, cluster) in cluster_sizes.iter().enumerate() {
        let energy = geometric_mean(&energy_ratios[i]).unwrap_or(1.0);
        let time = geometric_mean(&time_ratios[i]).unwrap_or(1.0);
        println!("  C-{cluster}: energy {energy:.3}, completion time {time:.3}");
        json_geomeans.push(JsonValue::object([
            ("cluster_size", JsonValue::from(*cluster)),
            ("normalized_energy", JsonValue::from(energy)),
            ("normalized_completion_time", JsonValue::from(time)),
        ]));
    }

    emit_json(&figure_json(
        "fig10_cluster_size",
        JsonValue::object([
            ("rows", JsonValue::Array(json_rows)),
            ("geomeans", JsonValue::Array(json_geomeans)),
        ]),
    ));
}
