//! Per-event dynamic energy constants.

/// Per-event dynamic energies in picojoules.
///
/// The defaults are loosely calibrated to published 11 nm-class projections
/// and, more importantly, preserve the relative costs the paper's
/// qualitative arguments rely on (see the crate-level documentation).
/// All values can be overridden for sensitivity studies.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// L1 instruction cache access (read or fill).
    pub l1i_access_pj: f64,
    /// L1 data cache read.
    pub l1d_read_pj: f64,
    /// L1 data cache write (fill or store hit).
    pub l1d_write_pj: f64,
    /// LLC slice tag-array access (includes the embedded directory tags).
    pub llc_tag_pj: f64,
    /// LLC slice data-array read.
    pub llc_data_read_pj: f64,
    /// LLC slice data-array write.
    pub llc_data_write_pj: f64,
    /// Directory entry read/update (sharer list only, ACKwise pointers).
    pub directory_access_pj: f64,
    /// Additional energy per directory access for reading/updating the
    /// locality classifier metadata (mode bits + home reuse counters).  Paid
    /// only by the locality-aware protocol, scaled by the number of tracked
    /// cores relative to Limited₃.
    pub classifier_access_pj: f64,
    /// Router traversal, per flit.
    pub router_flit_pj: f64,
    /// Link traversal, per flit per hop.
    pub link_flit_hop_pj: f64,
    /// DRAM access, per cache line.
    pub dram_access_pj: f64,
}

impl EnergyModel {
    /// The default model used by all experiments.
    pub fn paper_default() -> Self {
        EnergyModel {
            l1i_access_pj: 2.0,
            l1d_read_pj: 3.0,
            l1d_write_pj: 3.6,
            llc_tag_pj: 1.2,
            llc_data_read_pj: 10.0,
            llc_data_write_pj: 12.0,
            directory_access_pj: 1.5,
            classifier_access_pj: 0.5,
            router_flit_pj: 1.0,
            link_flit_hop_pj: 0.6,
            dram_access_pj: 400.0,
        }
    }

    /// Ratio of an LLC data write to a read (the paper quotes 1.2×).
    pub fn llc_write_read_ratio(&self) -> f64 {
        self.llc_data_write_pj / self.llc_data_read_pj
    }

    /// Validates that the model preserves the orderings the reproduction
    /// relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated ordering.
    pub fn validate(&self) -> Result<(), String> {
        let all = [
            ("l1i_access_pj", self.l1i_access_pj),
            ("l1d_read_pj", self.l1d_read_pj),
            ("l1d_write_pj", self.l1d_write_pj),
            ("llc_tag_pj", self.llc_tag_pj),
            ("llc_data_read_pj", self.llc_data_read_pj),
            ("llc_data_write_pj", self.llc_data_write_pj),
            ("directory_access_pj", self.directory_access_pj),
            ("classifier_access_pj", self.classifier_access_pj),
            ("router_flit_pj", self.router_flit_pj),
            ("link_flit_hop_pj", self.link_flit_hop_pj),
            ("dram_access_pj", self.dram_access_pj),
        ];
        for (name, value) in all {
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "{name} must be finite and non-negative, got {value}"
                ));
            }
        }
        if self.dram_access_pj <= self.llc_data_read_pj * 10.0 {
            return Err("DRAM access must cost at least 10x an LLC read".to_string());
        }
        if self.llc_data_write_pj < self.llc_data_read_pj {
            return Err("LLC write must not be cheaper than LLC read".to_string());
        }
        if self.llc_data_read_pj <= self.l1d_read_pj {
            return Err("LLC read must cost more than an L1 read".to_string());
        }
        Ok(())
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_validates() {
        EnergyModel::paper_default().validate().unwrap();
        EnergyModel::default().validate().unwrap();
    }

    #[test]
    fn llc_write_is_about_1_2x_read() {
        let m = EnergyModel::paper_default();
        assert!((m.llc_write_read_ratio() - 1.2).abs() < 0.01);
    }

    #[test]
    fn validation_catches_broken_orderings() {
        let mut m = EnergyModel::paper_default();
        m.dram_access_pj = 1.0;
        assert!(m.validate().is_err());

        let mut m = EnergyModel::paper_default();
        m.llc_data_write_pj = 1.0;
        assert!(m.validate().is_err());

        let mut m = EnergyModel::paper_default();
        m.llc_data_read_pj = 0.1;
        assert!(m.validate().is_err());

        let mut m = EnergyModel::paper_default();
        m.router_flit_pj = f64::NAN;
        assert!(m.validate().is_err());

        let mut m = EnergyModel::paper_default();
        m.l1d_read_pj = -1.0;
        assert!(m.validate().is_err());
    }
}
