//! Dynamic energy model and per-component accounting.
//!
//! The paper evaluates energy with McPAT/CACTI (caches, directory, DRAM) and
//! DSENT (routers, links) at the 11 nm node.  Those tools are not available
//! here, so this crate substitutes a table of per-event dynamic energies
//! ([`model::EnergyModel`]) whose *relative* magnitudes preserve the
//! orderings the paper's analysis depends on:
//!
//! * a DRAM access costs two orders of magnitude more than an on-chip cache
//!   access, so off-chip misses dominate when they occur;
//! * an LLC data-array access costs several times an L1 access, and a write
//!   costs ~1.2× a read (the factor the paper quotes when explaining Victim
//!   Replication's L2 energy overhead);
//! * directory lookups are cheaper than data arrays but grow with the
//!   classifier width (the locality-aware protocol's lookup/update covers
//!   both the sharer list and the locality metadata, Section 2.4.2);
//! * network energy is proportional to flit × router traversals and
//!   flit × link traversals.
//!
//! Energy is reported per component ([`accounting::Component`]) so the
//! stacked-bar breakdown of Figure 6 can be regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod model;

pub use accounting::{Component, EnergyAccounting};
pub use model::EnergyModel;
