//! Per-component energy accumulation (the Figure 6 breakdown).

use std::fmt;
use std::ops::{Add, AddAssign};

/// The memory-system components whose dynamic energy the paper reports
/// separately in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// L1 instruction caches.
    L1I,
    /// L1 data caches.
    L1D,
    /// L2 / last-level cache slices (tag + data arrays).
    L2Cache,
    /// Coherence directory (sharer lists + locality classifier).
    Directory,
    /// Network routers.
    NetworkRouter,
    /// Network links.
    NetworkLink,
    /// Off-chip DRAM.
    Dram,
}

impl Component {
    /// All components in the order used by the Figure 6 legend.
    pub const ALL: [Component; 7] = [
        Component::L1I,
        Component::L1D,
        Component::L2Cache,
        Component::Directory,
        Component::NetworkRouter,
        Component::NetworkLink,
        Component::Dram,
    ];

    /// Label used in reports (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Component::L1I => "L1-I Cache",
            Component::L1D => "L1-D Cache",
            Component::L2Cache => "L2 Cache (LLC)",
            Component::Directory => "Directory",
            Component::NetworkRouter => "Network Router",
            Component::NetworkLink => "Network Link",
            Component::Dram => "DRAM",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::L1I => 0,
            Component::L1D => 1,
            Component::L2Cache => 2,
            Component::Directory => 3,
            Component::NetworkRouter => 4,
            Component::NetworkLink => 5,
            Component::Dram => 6,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated dynamic energy, split by [`Component`], in picojoules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyAccounting {
    by_component: [f64; 7],
}

impl EnergyAccounting {
    /// Creates an empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `picojoules` to `component`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `picojoules` is negative or non-finite.
    pub fn record(&mut self, component: Component, picojoules: f64) {
        debug_assert!(
            picojoules.is_finite() && picojoules >= 0.0,
            "energy must be finite and non-negative"
        );
        self.by_component[component.index()] += picojoules;
    }

    /// Energy attributed to one component.
    pub fn component(&self, component: Component) -> f64 {
        self.by_component[component.index()]
    }

    /// Total energy across all components.
    pub fn total(&self) -> f64 {
        self.by_component.iter().sum()
    }

    /// Iterates `(component, picojoules)` in Figure 6 legend order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        Component::ALL.iter().map(|c| (*c, self.component(*c)))
    }

    /// The breakdown as fractions of the total (all zeros if the total is
    /// zero).
    pub fn fractions(&self) -> Vec<(Component, f64)> {
        let total = self.total();
        Component::ALL
            .iter()
            .map(|c| {
                (
                    *c,
                    if total > 0.0 {
                        self.component(*c) / total
                    } else {
                        0.0
                    },
                )
            })
            .collect()
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &EnergyAccounting) {
        for (i, v) in other.by_component.iter().enumerate() {
            self.by_component[i] += v;
        }
    }
}

impl Add for EnergyAccounting {
    type Output = EnergyAccounting;
    fn add(mut self, rhs: EnergyAccounting) -> EnergyAccounting {
        self.merge(&rhs);
        self
    }
}

impl AddAssign for EnergyAccounting {
    fn add_assign(&mut self, rhs: EnergyAccounting) {
        self.merge(&rhs);
    }
}

impl fmt::Display for EnergyAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "energy breakdown (pJ):")?;
        for (c, v) in self.iter() {
            writeln!(f, "  {:<18} {:>14.1}", c.label(), v)?;
        }
        write!(f, "  {:<18} {:>14.1}", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_ordered() {
        let labels: std::collections::HashSet<_> =
            Component::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 7);
        assert_eq!(Component::ALL[0], Component::L1I);
        assert_eq!(Component::ALL[6], Component::Dram);
    }

    #[test]
    fn add_and_total() {
        let mut acc = EnergyAccounting::new();
        acc.record(Component::L1D, 10.0);
        acc.record(Component::L1D, 5.0);
        acc.record(Component::Dram, 100.0);
        assert_eq!(acc.component(Component::L1D), 15.0);
        assert_eq!(acc.component(Component::L1I), 0.0);
        assert_eq!(acc.total(), 115.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut acc = EnergyAccounting::new();
        acc.record(Component::L2Cache, 30.0);
        acc.record(Component::NetworkLink, 70.0);
        let sum: f64 = acc.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Empty accounting has all-zero fractions.
        let empty = EnergyAccounting::new();
        assert!(empty.fractions().iter().all(|(_, f)| *f == 0.0));
    }

    #[test]
    fn merge_and_operators() {
        let mut a = EnergyAccounting::new();
        a.record(Component::Directory, 1.0);
        let mut b = EnergyAccounting::new();
        b.record(Component::Directory, 2.0);
        b.record(Component::Dram, 3.0);
        a.merge(&b);
        assert_eq!(a.component(Component::Directory), 3.0);
        let c = a.clone() + b.clone();
        assert_eq!(c.component(Component::Directory), 5.0);
        let mut d = EnergyAccounting::new();
        d += b;
        assert_eq!(d.component(Component::Dram), 3.0);
    }

    #[test]
    fn display_contains_all_components() {
        let mut acc = EnergyAccounting::new();
        acc.record(Component::L1I, 2.0);
        let text = acc.to_string();
        for c in Component::ALL {
            assert!(text.contains(c.label()), "missing {c}");
        }
        assert!(text.contains("TOTAL"));
    }
}
