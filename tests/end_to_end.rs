//! End-to-end integration tests spanning every crate: trace generation,
//! placement, coherence, replication, NoC, DRAM, energy and metrics.
//!
//! These use the scaled-down 16-core test configuration so they stay fast in
//! debug builds while exercising the same protocol paths as the 64-core
//! target.

use locality_replication::prelude::*;

fn trace(benchmark: Benchmark, accesses: usize) -> lad_trace::generator::WorkloadTrace {
    TraceGenerator::new(benchmark.profile()).generate(
        SystemConfig::small_test().num_cores,
        accesses,
        2024,
    )
}

fn run(benchmark: Benchmark, accesses: usize, config: ReplicationConfig) -> SimulationReport {
    let mut sim = Simulator::new(SystemConfig::small_test(), config);
    sim.run(&trace(benchmark, accesses))
}

#[test]
fn every_scheme_runs_every_quick_benchmark() {
    let configs = [
        ReplicationConfig::static_nuca(),
        ReplicationConfig::reactive_nuca(),
        ReplicationConfig::victim_replication(),
        ReplicationConfig::asr(0.5),
        ReplicationConfig::locality_aware(3),
    ];
    for benchmark in BenchmarkSuite::quick().benchmarks() {
        for config in &configs {
            let report = run(*benchmark, 400, config.clone());
            // Every access is either an L1 hit or classified by where it was
            // served.
            assert_eq!(
                report.total_accesses,
                report.misses.l1_hits + report.misses.l1_misses(),
                "{benchmark} under {} loses accesses",
                config.label()
            );
            assert!(report.completion_time.value() > 0);
            assert!(report.energy.total() > 0.0);
            // Compute plus memory latency must be attributed somewhere.
            assert!(report.latency.total() > 0);
        }
    }
}

#[test]
fn non_replicating_schemes_never_create_replicas() {
    for config in [
        ReplicationConfig::static_nuca(),
        ReplicationConfig::reactive_nuca(),
    ] {
        let report = run(Benchmark::Barnes, 800, config);
        assert_eq!(report.replicas_created, 0, "{}", report.scheme);
        assert_eq!(report.misses.llc_replica_hits, 0);
    }
}

#[test]
fn locality_aware_converts_home_hits_into_replica_hits() {
    let baseline = run(Benchmark::Barnes, 1600, ReplicationConfig::static_nuca());
    let locality = run(
        Benchmark::Barnes,
        1600,
        ReplicationConfig::locality_aware(3),
    );
    assert!(locality.misses.llc_replica_hits > 0);
    // Replica hits displace traffic that previously had to travel to the home
    // slices or off-chip.
    assert!(
        locality.misses.llc_home_hits + locality.misses.offchip_misses
            < baseline.misses.llc_home_hits + baseline.misses.offchip_misses,
        "replication must reduce traffic to the home slices and off-chip"
    );
    // The off-chip miss count must not explode from replication pressure on a
    // benchmark whose working set fits in the LLC.
    assert!(
        locality.misses.offchip_misses
            <= baseline.misses.offchip_misses + baseline.misses.offchip_misses / 2 + 64
    );
}

#[test]
fn replication_threshold_trades_replicas_for_pressure() {
    let rt1 = run(
        Benchmark::Barnes,
        1600,
        ReplicationConfig::locality_aware(1),
    );
    let rt3 = run(
        Benchmark::Barnes,
        1600,
        ReplicationConfig::locality_aware(3),
    );
    let rt8 = run(
        Benchmark::Barnes,
        1600,
        ReplicationConfig::locality_aware(8),
    );
    assert!(rt1.replicas_created >= rt3.replicas_created);
    assert!(rt3.replicas_created >= rt8.replicas_created);
}

#[test]
fn low_reuse_benchmark_sees_little_replication_under_rt3() {
    let report = run(
        Benchmark::Fluidanimate,
        1600,
        ReplicationConfig::locality_aware(3),
    );
    let rt1 = run(
        Benchmark::Fluidanimate,
        1600,
        ReplicationConfig::locality_aware(1),
    );
    // RT-3 filters out most of the single-use lines RT-1 would replicate.
    assert!(report.replicas_created < rt1.replicas_created);
}

#[test]
fn reports_are_deterministic_across_runs() {
    let a = run(
        Benchmark::LuNonContiguous,
        600,
        ReplicationConfig::locality_aware(3),
    );
    let b = run(
        Benchmark::LuNonContiguous,
        600,
        ReplicationConfig::locality_aware(3),
    );
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.misses.llc_replica_hits, b.misses.llc_replica_hits);
    assert_eq!(a.replicas_created, b.replicas_created);
    assert!((a.energy.total() - b.energy.total()).abs() < 1e-9);
}

#[test]
fn energy_breakdown_covers_expected_components() {
    let report = run(Benchmark::Barnes, 800, ReplicationConfig::locality_aware(3));
    assert!(report.energy.component(Component::L1D) > 0.0);
    assert!(report.energy.component(Component::L2Cache) > 0.0);
    assert!(report.energy.component(Component::Directory) > 0.0);
    assert!(report.energy.component(Component::NetworkRouter) > 0.0);
    assert!(report.energy.component(Component::NetworkLink) > 0.0);
    let fractions: f64 = report.energy.fractions().iter().map(|(_, f)| f).sum();
    assert!((fractions - 1.0).abs() < 1e-9);
}

#[test]
fn experiment_runner_produces_a_full_comparison() {
    let suite = BenchmarkSuite::custom(vec![Benchmark::Barnes, Benchmark::Dedup], 500, 5);
    let runner = ExperimentRunner::new(SystemConfig::small_test(), suite).with_threads(4);
    let comparison = runner.run_paper_comparison();
    for scheme in SchemeComparison::SCHEME_ORDER {
        for benchmark in comparison.benchmarks().to_vec() {
            assert!(
                comparison.report(benchmark, scheme).is_ok(),
                "missing {benchmark} under {scheme}"
            );
            let normalized = comparison
                .normalized_energy(benchmark, scheme, SchemeId::StaticNuca)
                .unwrap_or_else(|err| panic!("{err}"));
            assert!(normalized > 0.0 && normalized.is_finite());
        }
    }
    // S-NUCA normalized to itself is exactly 1.
    let self_normalized = comparison
        .average_normalized_energy(SchemeId::StaticNuca, SchemeId::StaticNuca)
        .unwrap();
    assert!((self_normalized - 1.0).abs() < 1e-12);
}

#[test]
fn missing_schemes_surface_as_typed_errors_not_silent_defaults() {
    // Regression for the old string-keyed API, which mapped a missing
    // scheme or baseline to a silent 1.0: a matrix that never ran VR must
    // report the lookup as an UnknownScheme error.
    let suite = BenchmarkSuite::custom(vec![Benchmark::Dedup], 200, 5);
    let runner = ExperimentRunner::new(SystemConfig::small_test(), suite).with_threads(2);
    let results = runner
        .run_matrix(&[SchemeId::StaticNuca, SchemeId::Rt(3)])
        .unwrap();
    let comparison = SchemeComparison::from_results(vec![Benchmark::Dedup], results);

    let err = comparison
        .normalized_energy(
            Benchmark::Dedup,
            SchemeId::VictimReplication,
            SchemeId::StaticNuca,
        )
        .unwrap_err();
    assert_eq!(err.scheme, SchemeId::VictimReplication);
    let err = comparison
        .normalized_completion_time(Benchmark::Dedup, SchemeId::Rt(3), SchemeId::Asr)
        .unwrap_err();
    assert_eq!(
        err.scheme,
        SchemeId::Asr,
        "missing baseline must name the baseline"
    );
    // Present cells still work.
    let ok = comparison
        .normalized_energy(Benchmark::Dedup, SchemeId::Rt(3), SchemeId::StaticNuca)
        .unwrap();
    assert!(ok.is_finite() && ok > 0.0);
}

/// An out-of-crate policy: replicate every line at the requester's slice on
/// every home fill, never consulting any classifier — the kind of scheme the
/// registry exists for.
#[derive(Debug)]
struct AlwaysReplicate;

impl ReplicationPolicy for AlwaysReplicate {
    fn id(&self) -> SchemeId {
        SchemeId::Custom("ALWAYS")
    }
    fn placement(&self) -> PlacementPolicy {
        PlacementPolicy::AddressInterleaved
    }
    fn replicates(&self) -> bool {
        true
    }
    fn replicate_on_fill(&self, _: FillDecision<'_>) -> bool {
        true
    }
    fn replicate_on_l1_evict(&self, _: EvictDecision<'_>) -> bool {
        false
    }
}

#[test]
fn custom_policy_registered_in_the_registry_runs_through_run_matrix() {
    let suite = BenchmarkSuite::custom(vec![Benchmark::Barnes], 600, 5);
    let mut runner = ExperimentRunner::new(SystemConfig::small_test(), suite).with_threads(2);
    runner.register_scheme(
        std::sync::Arc::new(AlwaysReplicate),
        ReplicationConfig::static_nuca(),
    );

    let results = runner
        .run_matrix(&[SchemeId::StaticNuca, SchemeId::Custom("ALWAYS")])
        .expect("registered custom scheme must resolve");
    let custom = &results[&(Benchmark::Barnes, SchemeId::Custom("ALWAYS"))];
    let baseline = &results[&(Benchmark::Barnes, SchemeId::StaticNuca)];

    assert_eq!(custom.scheme, "ALWAYS");
    assert_eq!(custom.scheme_id, SchemeId::Custom("ALWAYS"));
    assert!(
        custom.replicas_created > 0,
        "always-replicate must create replicas"
    );
    assert!(custom.misses.llc_replica_hits > 0);
    assert_eq!(baseline.replicas_created, 0);
    assert_eq!(custom.total_accesses, baseline.total_accesses);

    // The same custom scheme also flows through the comparison machinery.
    let comparison = SchemeComparison::from_results(vec![Benchmark::Barnes], results);
    let normalized = comparison
        .normalized_energy(
            Benchmark::Barnes,
            SchemeId::Custom("ALWAYS"),
            SchemeId::StaticNuca,
        )
        .unwrap();
    assert!(normalized.is_finite() && normalized > 0.0);
}

#[test]
fn run_length_characterization_distinguishes_benchmarks() {
    let barnes = run(Benchmark::Barnes, 1600, ReplicationConfig::static_nuca());
    let dist = barnes.run_lengths.distribution();
    let srw: f64 = dist
        .iter()
        .find(|(c, _)| *c == DataClass::SharedReadWrite)
        .map(|(_, b)| b.iter().sum())
        .unwrap();
    let total: f64 = dist.iter().flat_map(|(_, b)| b.iter()).sum();
    assert!(
        srw / total > 0.5,
        "BARNES LLC accesses must be dominated by shared read-write data"
    );
}
