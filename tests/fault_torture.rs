//! Crash-consistency torture suite for the experiment service.
//!
//! Every test here runs a real server with the deterministic fault
//! injector armed ([`lad_common::fault`]) and asserts the robustness
//! invariants the service promises:
//!
//! - **No wrong results, ever.** Whatever faults fire, every report a
//!   client finally obtains is byte-identical to a fault-free direct
//!   replay of the same workload.
//! - **No panics, no hangs.** The server survives dropped connections,
//!   stalled peers, torn writes, ENOSPC, and worker-cell panics, and
//!   keeps answering well-formed frames.
//! - **Crash-consistent durability.** A server killed at *any* byte of a
//!   durable write leaves a file the next boot quarantines (never loads),
//!   re-executing the work instead of serving a corrupt artifact.
//! - **Bounded recovery.** Clients reach a successful answer within their
//!   retry budget once each injected fault has fired.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use locality_replication::common::config::SystemConfig;
use locality_replication::common::fault::{FaultInjector, FaultPlan};
use locality_replication::common::json::JsonValue;
use locality_replication::energy::model::EnergyModel;
use locality_replication::replication::policy::SchemeRegistry;
use locality_replication::replication::scheme::SchemeId;
use locality_replication::serve::client::{Client, ClientError, RetryPolicy};
use locality_replication::serve::protocol::{
    fingerprint, fingerprint_hex, JobSpec, SystemPreset, TraceSpec,
};
use locality_replication::serve::server::{Server, ServerConfig};
use locality_replication::sim::engine::{RunOutcome, Simulator};
use locality_replication::trace::benchmarks::Benchmark;
use locality_replication::trace::generator::TraceGenerator;
use locality_replication::traceio::source::GeneratorSource;

/// A fresh temporary data directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "lad-torture-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn config(dir: &TempDir) -> ServerConfig {
    let mut config = ServerConfig::new(dir.path().join("data"));
    config.workers = 2;
    config.read_timeout = Duration::from_millis(200);
    config
}

/// A retry policy generous enough to outlast any single injected fault
/// but still bounded (the suite must fail by timeout, not hang).
fn torture_policy() -> RetryPolicy {
    let mut policy = RetryPolicy::standard();
    policy.attempts = 6;
    policy.base = Duration::from_millis(5);
    policy.cap = Duration::from_millis(50);
    policy
}

fn connect(server: &Server) -> Client {
    Client::connect_with(server.addr().to_string(), torture_policy()).unwrap()
}

fn job_id(receipt: &JsonValue) -> String {
    receipt
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("submit response carries the job id")
        .to_string()
}

fn counter(frame: &JsonValue, group: &str, field: &str) -> u64 {
    frame
        .get(group)
        .and_then(|g| g.get(field))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("stats frame is missing {group}.{field}"))
}

/// The report a `result` frame carries for one (benchmark, scheme) cell.
fn cell_report(result: &JsonValue, benchmark: &str, scheme: &str) -> String {
    result
        .get("results")
        .and_then(JsonValue::as_array)
        .expect("result frame carries a results array")
        .iter()
        .find(|cell| {
            cell.get("benchmark").and_then(JsonValue::as_str) == Some(benchmark)
                && cell.get("scheme").and_then(JsonValue::as_str) == Some(scheme)
        })
        .and_then(|cell| cell.get("report"))
        .unwrap_or_else(|| panic!("no result cell for ({benchmark}, {scheme})"))
        .pretty()
}

/// The fault-free ground truth: a direct in-process replay of the same
/// builtin workload, canonically rendered for byte comparison.
fn direct_report(
    benchmark: Benchmark,
    cores: usize,
    accesses: usize,
    seed: u64,
    scheme: SchemeId,
) -> String {
    let registry = SchemeRegistry::builtin();
    let entry = registry.get(scheme).unwrap();
    let mut sim = Simulator::with_policy_and_energy_model(
        SystemConfig::small_test().with_num_cores(cores),
        entry.config.clone(),
        Arc::clone(&entry.policy),
        EnergyModel::paper_default(),
    );
    let mut source = GeneratorSource::new(
        TraceGenerator::new(benchmark.profile()),
        cores,
        accesses,
        seed,
    );
    match sim.run_source_observed(&mut source, None).unwrap() {
        RunOutcome::Completed(report) => report.to_json().pretty(),
        RunOutcome::Cancelled(_) => panic!("uninterrupted run cannot be cancelled"),
    }
}

/// The torture workload: one builtin benchmark under two schemes.
fn torture_spec() -> JobSpec {
    JobSpec {
        trace: TraceSpec::Builtin {
            benchmark: "BARNES".into(),
            cores: 16,
            accesses_per_core: 150,
            seed: 3,
        },
        schemes: vec!["RT-3".into(), "S-NUCA".into()],
        system: SystemPreset::SmallTest,
    }
}

fn torture_baseline() -> [(String, String); 2] {
    [
        (
            "RT-3".to_string(),
            direct_report(Benchmark::Barnes, 16, 150, 3, SchemeId::Rt(3)),
        ),
        (
            "S-NUCA".to_string(),
            direct_report(Benchmark::Barnes, 16, 150, 3, SchemeId::StaticNuca),
        ),
    ]
}

/// Submits `spec` and waits out its result, with no fault tolerance:
/// for paths where nothing should go wrong.
fn run_job(client: &mut Client, spec: &JobSpec) -> JsonValue {
    let job = job_id(&client.submit(spec).unwrap());
    client.wait(&job, Duration::from_millis(5)).unwrap()
}

/// Submits `spec` and waits for its result, resubmitting on injected
/// failures (a failed cell is never cached, so a resubmission
/// re-executes).  Panics if no attempt within the budget succeeds.
fn submit_until_success(client: &mut Client, spec: &JobSpec) -> JsonValue {
    let mut last = String::new();
    for _ in 0..12 {
        let receipt = match client.submit(spec) {
            Ok(receipt) => receipt,
            Err(err) => {
                last = err.to_string();
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        match client.wait(&job_id(&receipt), Duration::from_millis(5)) {
            Ok(result) => return result,
            Err(ClientError::Server {
                code,
                kind,
                message,
            }) => {
                // The only acceptable server-side failure under injection
                // is a failed cell (worker panic, dropped mid-execution);
                // anything else would be a protocol regression.
                assert_eq!(
                    (code, kind.as_str()),
                    (500, "job_failed"),
                    "unexpected server error under fault injection: {message}"
                );
                last = message;
            }
            Err(err) => last = err.to_string(),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no successful result within the retry budget; last error: {last}");
}

/// Asserts the result frame's reports are byte-identical to the
/// fault-free direct replay.
fn assert_matches_baseline(result: &JsonValue, baseline: &[(String, String)]) {
    for (scheme, expected) in baseline {
        assert_eq!(
            &cell_report(result, "BARNES", scheme),
            expected,
            "report for ({scheme}) differs from fault-free direct replay"
        );
    }
}

/// Tentpole invariant: replaying the same workload under N seeded random
/// fault plans always converges to byte-identical reports, with the
/// server answering `health` and `stats` afterwards — no panic, no hang,
/// no wrong result.
#[test]
fn seeded_random_fault_plans_never_corrupt_results() {
    let baseline = torture_baseline();
    for seed in 1..=8u64 {
        let plan = FaultPlan::random(seed);
        let dir = TempDir::new(&format!("plan-{seed}"));
        let mut cfg = config(&dir);
        cfg.checkpoint_interval = 100;
        cfg.fault = FaultInjector::armed(plan.clone());
        let server = Server::spawn(cfg).unwrap();
        let mut client = connect(&server);

        let result = submit_until_success(&mut client, &torture_spec());
        assert_matches_baseline(&result, &baseline);

        // The server is still coherent: health and stats answer, and the
        // cache mode is one of the defined states (degraded is fine — an
        // injected ENOSPC may have fired).
        let health = client.health().unwrap_or_else(|err| {
            panic!("health unanswerable after plan {plan} (seed {seed}): {err}")
        });
        let status = health.get("status").and_then(JsonValue::as_str).unwrap();
        assert!(
            status == "ok" || status == "degraded",
            "undefined health status {status:?} under plan {plan}"
        );
        let stats = client.stats().unwrap();
        assert!(counter(&stats, "cells", "executed") >= 1);
        // Dropping the handle drains the server; join() would be forever
        // if a fault wedged the drain, so bound it ourselves.
        let _ = client.shutdown();
        drop(server);
    }
}

/// Crash-consistency sweep: a server killed at *every* sampled byte of a
/// checkpoint write (torn prefix) — plus single-byte corruptions — leaves
/// a file the next boot quarantines, re-executes the cell from scratch,
/// and still produces the byte-identical report.  An intact-checkpoint
/// control iteration proves the same harness *does* resume when the file
/// verifies.
#[test]
fn torn_checkpoint_at_every_kill_point_recovers_byte_identically() {
    let dir = TempDir::new("torn-sweep");
    let mut cfg = config(&dir);
    cfg.workers = 1;
    cfg.checkpoint_interval = 250;
    let spec = JobSpec {
        trace: TraceSpec::Builtin {
            benchmark: "BARNES".into(),
            cores: 16,
            accesses_per_core: 800,
            seed: 7,
        },
        schemes: vec!["RT-3".into()],
        system: SystemPreset::SmallTest,
    };
    let expected = direct_report(Benchmark::Barnes, 16, 800, 7, SchemeId::Rt(3));

    // Server A: run until a checkpoint hits disk mid-job, then kill it.
    let server_a = Server::spawn(cfg.clone()).unwrap();
    let mut client = connect(&server_a);
    let job = job_id(&client.submit(&spec).unwrap());
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&job).unwrap();
        let cell = &status.get("cells").and_then(JsonValue::as_array).unwrap()[0];
        let checkpointed = cell
            .get("checkpointed_accesses")
            .and_then(JsonValue::as_u64)
            .unwrap();
        if checkpointed >= 250 {
            assert_eq!(
                status.get("state").and_then(JsonValue::as_str),
                Some("running"),
                "workload must still be mid-flight when the server dies"
            );
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint within deadline");
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(client);
    drop(server_a);

    let checkpoint_dir = cfg.data_dir.join("checkpoints");
    let spills: Vec<PathBuf> = std::fs::read_dir(&checkpoint_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    assert_eq!(spills.len(), 1, "exactly one checkpoint spilled");
    let checkpoint_path = spills[0].clone();
    let good = std::fs::read(&checkpoint_path).unwrap();
    let quarantine_path = {
        let mut name = checkpoint_path.as_os_str().to_os_string();
        name.push(".quarantine");
        PathBuf::from(name)
    };

    // Every mutation a mid-write crash (or bit rot) can leave: torn
    // prefixes at sampled offsets spanning the whole file, and
    // single-byte flips.  `None` is the intact control.
    let mut mutations: Vec<Option<Vec<u8>>> = Vec::new();
    let stride = (good.len() / 5).max(1);
    for cut in (0..good.len()).step_by(stride).chain([1, good.len() - 1]) {
        mutations.push(Some(good[..cut].to_vec()));
    }
    for flip in [0, good.len() / 3, good.len() - 2] {
        let mut bad = good.clone();
        bad[flip] ^= 0x40;
        mutations.push(Some(bad));
    }
    mutations.push(None);

    // Whether `bytes` still parses and digest-verifies as a sealed
    // envelope.  Mirrors the load-time check: a mutation that only loses
    // trailing whitespace (e.g. a cut at len-1 dropping the final
    // newline) is still digest-valid, and *should* resume.
    let verifies = |bytes: &[u8]| -> bool {
        let Ok(text) = std::str::from_utf8(bytes) else {
            return false;
        };
        let Ok(envelope) = JsonValue::parse(text) else {
            return false;
        };
        match (
            envelope.get("digest").and_then(JsonValue::as_str),
            envelope.get("body"),
        ) {
            (Some(digest), Some(body)) => fingerprint_hex(fingerprint(&body.pretty())) == digest,
            _ => false,
        }
    };

    let mut quarantined_count = 0u64;
    for (index, mutation) in mutations.iter().enumerate() {
        // Reset durable state so every iteration exercises the
        // checkpoint path: no cache entry, no stale quarantine.
        std::fs::remove_dir_all(cfg.data_dir.join("cache")).ok();
        std::fs::remove_file(&quarantine_path).ok();
        let bytes = mutation.as_deref().unwrap_or(&good);
        let valid = verifies(bytes);
        std::fs::write(&checkpoint_path, bytes).unwrap();

        let server = Server::spawn(cfg.clone()).unwrap();
        let mut client = connect(&server);
        let result = run_job(&mut client, &spec);
        assert_eq!(
            cell_report(&result, "BARNES", "RT-3"),
            expected,
            "mutation {index} produced a wrong report"
        );
        let stats = client.stats().unwrap();
        let health = client.health().unwrap();
        assert_eq!(counter(&stats, "cells", "executed"), 1);
        if valid {
            assert_eq!(
                counter(&stats, "cells", "resumed"),
                1,
                "mutation {index}: a digest-valid checkpoint must resume"
            );
            assert_eq!(counter(&health, "quarantined", "checkpoints"), 0);
        } else {
            quarantined_count += 1;
            assert_eq!(
                counter(&stats, "cells", "resumed"),
                0,
                "mutation {index}: a corrupt checkpoint must never resume"
            );
            assert_eq!(
                counter(&health, "quarantined", "checkpoints"),
                1,
                "mutation {index}: the corrupt checkpoint must be quarantined"
            );
            assert!(
                quarantine_path.is_file(),
                "mutation {index}: corrupt bytes preserved for post-mortem"
            );
        }
        client.shutdown().unwrap();
        server.join();
    }
    // Vacuity guard: the sweep is only meaningful if most mutations took
    // the quarantine path (a few — e.g. a cut that only loses trailing
    // whitespace — legitimately stay digest-valid and resume instead).
    assert!(
        quarantined_count >= mutations.len() as u64 / 2,
        "the sweep must mostly exercise the quarantine path \
         ({quarantined_count} of {} mutations)",
        mutations.len()
    );
}

/// One flipped byte in a spilled result-cache entry: the restarted server
/// quarantines the entry at boot, reports a cache miss, re-executes the
/// cell, and serves the byte-identical report.
#[test]
fn flipped_byte_in_spilled_cache_entry_is_quarantined_and_reexecuted() {
    let dir = TempDir::new("cache-flip");
    let cfg = config(&dir);
    let baseline = torture_baseline();

    let server = Server::spawn(cfg.clone()).unwrap();
    let mut client = connect(&server);
    let result = run_job(&mut client, &torture_spec());
    assert_matches_baseline(&result, &baseline);
    client.shutdown().unwrap();
    server.join();

    // Corrupt one spilled entry (one byte, deep in the body).
    let cache_dir = cfg.data_dir.join("cache");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 2, "both cells spilled");
    let victim = &entries[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let at = bytes.len() * 2 / 3;
    bytes[at] ^= 0x01;
    std::fs::write(victim, &bytes).unwrap();

    // Restart: the corrupt entry is quarantined at load, the other
    // survives, and a resubmission re-executes exactly the corrupted cell.
    let server = Server::spawn(cfg).unwrap();
    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "cache", "quarantined"), 1);
    assert_eq!(counter(&stats, "cache", "entries"), 1);
    let mut quarantine = victim.as_os_str().to_os_string();
    quarantine.push(".quarantine");
    assert!(PathBuf::from(quarantine).is_file());

    let receipt = client.submit(&torture_spec()).unwrap();
    assert_eq!(
        receipt.get("cached").and_then(JsonValue::as_u64),
        Some(1),
        "exactly the corrupted cell must miss"
    );
    let result = client
        .wait(&job_id(&receipt), Duration::from_millis(5))
        .unwrap();
    assert_matches_baseline(&result, &baseline);
    assert_eq!(counter(&client.stats().unwrap(), "cells", "executed"), 1);
    client.shutdown().unwrap();
    server.join();
}

/// Injected connection drops (server kills the socket mid-conversation):
/// the client's bounded retry policy reconnects and resends — safe
/// because every verb is idempotent — and reaches the correct result.
#[test]
fn dropped_connections_retry_to_success() {
    let dir = TempDir::new("conn-drop");
    let mut cfg = config(&dir);
    cfg.fault = FaultInjector::armed(
        FaultPlan::parse("conn-write:1:drop;conn-read:3:drop;conn-read:6:halfclose").unwrap(),
    );
    let server = Server::spawn(cfg).unwrap();
    let mut client = connect(&server);

    let result = submit_until_success(&mut client, &torture_spec());
    assert_matches_baseline(&result, &torture_baseline());
    assert!(
        client.retries() >= 1,
        "the drop plan must actually exercise the retry path"
    );
    let _ = client.shutdown();
    drop(server);
}

/// An injected worker-cell panic is contained: the job fails with the
/// typed 500 `job_failed` error, the server keeps serving, and a
/// resubmission (the panic fault now exhausted) succeeds byte-identically.
#[test]
fn injected_cell_panic_fails_typed_then_resubmission_succeeds() {
    let dir = TempDir::new("cell-panic");
    let mut cfg = config(&dir);
    cfg.fault = FaultInjector::armed(FaultPlan::parse("cell:1:panic").unwrap());
    let server = Server::spawn(cfg).unwrap();
    let mut client = connect(&server);

    let spec = torture_spec();
    let job = job_id(&client.submit(&spec).unwrap());
    match client.wait(&job, Duration::from_millis(5)) {
        Err(ClientError::Server {
            code,
            kind,
            message,
        }) => {
            assert_eq!((code, kind.as_str()), (500, "job_failed"));
            assert!(
                message.contains("injected fault"),
                "failure message must carry the panic payload, got {message:?}"
            );
        }
        other => panic!("expected job_failed from the panicking cell, got {other:?}"),
    }
    assert!(counter(&client.stats().unwrap(), "cells", "failed") >= 1);

    // The worker pool survived the panic; the fault is exhausted, so a
    // fresh submission executes cleanly.
    let result = submit_until_success(&mut client, &spec);
    assert_matches_baseline(&result, &torture_baseline());
    client.shutdown().unwrap();
    server.join();
}

/// ENOSPC on a cache spill flips the cache into memory-only degraded
/// mode: results stay correct and cacheable in memory, nothing more is
/// written to disk, and `health` reports the degradation.
#[test]
fn enospc_spill_degrades_to_memory_only_and_health_reports_it() {
    let dir = TempDir::new("enospc");
    let mut cfg = config(&dir);
    cfg.fault = FaultInjector::armed(FaultPlan::parse("cache-spill:1:enospc").unwrap());
    let server = Server::spawn(cfg.clone()).unwrap();
    let mut client = connect(&server);
    let baseline = torture_baseline();

    let result = run_job(&mut client, &torture_spec());
    assert_matches_baseline(&result, &baseline);

    let health = client.health().unwrap();
    assert_eq!(
        health.get("status").and_then(JsonValue::as_str),
        Some("degraded")
    );
    assert_eq!(
        health.get("cache_mode").and_then(JsonValue::as_str),
        Some("degraded")
    );
    assert!(
        health
            .get("spill_errors")
            .and_then(JsonValue::as_u64)
            .unwrap()
            >= 1
    );

    // Degraded ≠ broken: the memory cache still answers resubmissions,
    // and no entry files were written after the disk "filled up".
    let receipt = client.submit(&torture_spec()).unwrap();
    assert_eq!(receipt.get("cached").and_then(JsonValue::as_u64), Some(2));
    let spilled = std::fs::read_dir(cfg.data_dir.join("cache"))
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .and_then(|x| x.to_str())
                == Some("json")
        })
        .count();
    assert_eq!(spilled, 0, "degraded cache must not keep writing to disk");
    client.shutdown().unwrap();
    server.join();
}

/// Slow-loris and oversized peers are reaped: a connection that stalls
/// mid-frame or streams an over-cap frame is dropped (and counted), and
/// the server keeps serving everyone else.
#[test]
fn slow_loris_and_oversized_frames_are_reaped() {
    let dir = TempDir::new("loris");
    let mut cfg = config(&dir);
    cfg.read_timeout = Duration::from_millis(50);
    cfg.frame_deadline = Duration::from_millis(250);
    cfg.max_upload_bytes = 1024;
    let server = Server::spawn(cfg).unwrap();

    // A peer that sends half a frame and then goes quiet.
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.write_all(b"{\"verb\": \"sta").unwrap();
    loris.flush().unwrap();

    // A peer that streams an endless frame (no newline) past the cap
    // (2 * max_upload_bytes + 4096).
    let mut firehose = TcpStream::connect(server.addr()).unwrap();
    let blob = vec![b'x'; 10_000];
    let _ = firehose.write_all(&blob);
    let _ = firehose.flush();

    let mut client = connect(&server);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().unwrap();
        if counter(&stats, "connections", "reaped") >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled and oversized peers were never reaped"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(loris);
    drop(firehose);

    // Everyone else is unaffected.
    let result = run_job(&mut client, &torture_spec());
    assert_matches_baseline(&result, &torture_baseline());
    client.shutdown().unwrap();
    server.join();
}
