//! Integration tests of the `lad-serve` experiment service: wire-level
//! robustness, in-flight deduplication of concurrent identical
//! submissions, result-cache behaviour across resubmission and restart,
//! queue backpressure, and the checkpoint/resume path when a server dies
//! mid-job.
//!
//! Every test runs a real server on an ephemeral loopback port over its
//! own temporary data directory.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use locality_replication::common::config::SystemConfig;
use locality_replication::common::json::JsonValue;
use locality_replication::replication::policy::SchemeRegistry;
use locality_replication::replication::scheme::SchemeId;
use locality_replication::serve::client::{Client, ClientError};
use locality_replication::serve::protocol::{JobSpec, SystemPreset, TraceSpec};
use locality_replication::serve::server::{Server, ServerConfig};
use locality_replication::sim::checkpoint::EngineCheckpoint;
use locality_replication::sim::engine::{RunOutcome, Simulator};
use locality_replication::sim::experiment::ExperimentRunner;
use locality_replication::trace::benchmarks::Benchmark;
use locality_replication::trace::generator::TraceGenerator;
use locality_replication::trace::suite::BenchmarkSuite;
use locality_replication::traceio::source::GeneratorSource;
use locality_replication::traceio::suite::record_suite;

/// A fresh temporary data directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "lad-serve-it-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Test-friendly defaults: fast connection teardown, two workers.
fn config(dir: &TempDir) -> ServerConfig {
    let mut config = ServerConfig::new(dir.path().join("data"));
    config.workers = 2;
    config.read_timeout = Duration::from_millis(400);
    config
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr().to_string()).unwrap()
}

fn job_id(receipt: &JsonValue) -> String {
    receipt
        .get("job")
        .and_then(JsonValue::as_str)
        .expect("submit response carries the job id")
        .to_string()
}

fn counter(frame: &JsonValue, group: &str, field: &str) -> u64 {
    frame
        .get(group)
        .and_then(|g| g.get(field))
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("stats frame is missing {group}.{field}"))
}

/// The report a `result` frame carries for one (benchmark, scheme) cell,
/// rendered canonically for byte comparison.
fn cell_report(result: &JsonValue, benchmark: &str, scheme: &str) -> String {
    result
        .get("results")
        .and_then(JsonValue::as_array)
        .expect("result frame carries a results array")
        .iter()
        .find(|cell| {
            cell.get("benchmark").and_then(JsonValue::as_str) == Some(benchmark)
                && cell.get("scheme").and_then(JsonValue::as_str) == Some(scheme)
        })
        .and_then(|cell| cell.get("report"))
        .unwrap_or_else(|| panic!("no result cell for ({benchmark}, {scheme})"))
        .pretty()
}

#[test]
fn service_matches_direct_replay_and_caches_resubmissions() {
    let dir = TempDir::new("matrix");
    let suite = BenchmarkSuite::custom(vec![Benchmark::Barnes, Benchmark::Dedup], 120, 9);
    let recorded = record_suite(&suite, 16, &dir.path().join("traces")).unwrap();
    let files: Vec<PathBuf> = recorded.iter().map(|t| t.path.clone()).collect();
    let schemes = [SchemeId::StaticNuca, SchemeId::Rt(3)];
    let direct = ExperimentRunner::new(SystemConfig::small_test(), suite)
        .replay_file_matrix(&files, &schemes)
        .unwrap();

    let server = Server::spawn(config(&dir)).unwrap();
    let mut client = connect(&server);
    // Upload one trace and address it by digest; submit the other by path.
    let barnes_bytes = std::fs::read(&files[0]).unwrap();
    let uploaded = client.upload(&barnes_bytes).unwrap();
    let digest = uploaded
        .get("digest")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    let expected = locality_replication::traceio::digest::digest_file(&files[0]).unwrap();
    assert_eq!(
        digest,
        expected.to_hex(),
        "upload digest is the content digest"
    );

    let scheme_labels = vec!["S-NUCA".to_string(), "RT-3".to_string()];
    let jobs = [
        JobSpec {
            trace: TraceSpec::Stored {
                digest: digest.clone(),
            },
            schemes: scheme_labels.clone(),
            system: SystemPreset::SmallTest,
        },
        JobSpec {
            trace: TraceSpec::File {
                path: files[1].clone(),
            },
            schemes: scheme_labels.clone(),
            system: SystemPreset::SmallTest,
        },
    ];
    for (spec, benchmark) in jobs.iter().zip(["BARNES", "DEDUP"]) {
        let job = job_id(&client.submit(spec).unwrap());
        let result = client.wait(&job, Duration::from_millis(10)).unwrap();
        for scheme in &schemes {
            let direct_report = &direct[&(benchmark.to_string(), *scheme)];
            assert_eq!(
                cell_report(&result, benchmark, &scheme.label()),
                direct_report.to_json().pretty(),
                "service report for ({benchmark}, {}) differs from direct replay",
                scheme.label()
            );
        }
    }
    let executed_once = counter(&client.stats().unwrap(), "cells", "executed");
    assert_eq!(executed_once, 4, "four cells simulated");

    // Resubmitting both jobs is answered from the cache: every cell comes
    // back `cached`, nothing re-simulates, and the hit counters move.
    for (spec, benchmark) in jobs.iter().zip(["BARNES", "DEDUP"]) {
        let receipt = client.submit(spec).unwrap();
        assert_eq!(
            receipt.get("cached").and_then(JsonValue::as_u64),
            Some(2),
            "resubmission of {benchmark} must be fully cached"
        );
        let result = client
            .wait(&job_id(&receipt), Duration::from_millis(5))
            .unwrap();
        for scheme in &schemes {
            assert_eq!(
                cell_report(&result, benchmark, &scheme.label()),
                direct[&(benchmark.to_string(), *scheme)].to_json().pretty()
            );
        }
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        counter(&stats, "cells", "executed"),
        executed_once,
        "cached resubmission must not re-simulate"
    );
    assert!(counter(&stats, "cache", "hits") >= 4);
    assert_eq!(counter(&stats, "cache", "entries"), 4);

    // The spill directory survives a restart: a brand-new server over the
    // same data dir answers from cache without executing anything.
    client.shutdown().unwrap();
    server.join();
    let server = Server::spawn(config(&dir)).unwrap();
    let mut client = connect(&server);
    let receipt = client.submit(&jobs[0]).unwrap();
    assert_eq!(receipt.get("cached").and_then(JsonValue::as_u64), Some(2));
    let stats = client.stats().unwrap();
    assert_eq!(counter(&stats, "cells", "executed"), 0);
    assert_eq!(counter(&stats, "cache", "entries"), 4);

    // An unknown stored digest is a typed 404.
    let missing = client.submit(&JobSpec {
        trace: TraceSpec::Stored {
            digest: "00000000000000aa".into(),
        },
        schemes: vec!["RT-3".into()],
        system: SystemPreset::SmallTest,
    });
    match missing {
        Err(ClientError::Server { code, kind, .. }) => {
            assert_eq!((code, kind.as_str()), (404, "unknown_trace"));
        }
        other => panic!("expected unknown_trace, got {other:?}"),
    }
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn concurrent_identical_submissions_execute_once() {
    let dir = TempDir::new("dedup");
    let server = Server::spawn(config(&dir)).unwrap();
    let spec = JobSpec {
        trace: TraceSpec::Builtin {
            benchmark: "BARNES".into(),
            cores: 16,
            accesses_per_core: 150,
            seed: 3,
        },
        schemes: vec!["RT-3".into()],
        system: SystemPreset::SmallTest,
    };
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let server = &server;
                let spec = &spec;
                scope.spawn(move || {
                    let mut client = connect(server);
                    let job = job_id(&client.submit(spec).unwrap());
                    let result = client.wait(&job, Duration::from_millis(5)).unwrap();
                    cell_report(&result, "BARNES", "RT-3")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        reports.windows(2).all(|w| w[0] == w[1]),
        "all four submissions must see the same report"
    );
    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    assert_eq!(
        counter(&stats, "cells", "executed"),
        1,
        "four identical parallel submissions must simulate exactly once"
    );
    assert_eq!(counter(&stats, "jobs", "submitted"), 4);
    client.shutdown().unwrap();
    server.join();
}

/// Sends one raw line and returns the parsed response frame.
fn raw_round_trip(stream: &TcpStream, line: &str) -> JsonValue {
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    JsonValue::parse(response.trim()).expect("every response line is well-formed JSON")
}

fn error_of(frame: &JsonValue) -> (u64, String) {
    assert_eq!(frame.get("ok").and_then(JsonValue::as_bool), Some(false));
    let error = frame
        .get("error")
        .expect("error frames carry an error object");
    (
        error.get("code").and_then(JsonValue::as_u64).unwrap(),
        error
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string(),
    )
}

#[test]
fn malformed_frames_get_typed_errors_and_never_kill_the_server() {
    let dir = TempDir::new("robust");
    let server = Server::spawn(config(&dir)).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();

    let cases: [(&str, u64, &str); 10] = [
        ("this is not json", 400, "malformed_frame"),
        ("{\"no\": \"verb\"}", 400, "malformed_frame"),
        ("{\"verb\": \"zap\"}", 400, "unknown_verb"),
        ("{\"verb\": \"status\"}", 400, "bad_request"),
        (
            "{\"verb\": \"status\", \"job\": \"job-99\"}",
            404,
            "unknown_job",
        ),
        ("{\"verb\": \"submit\"}", 400, "bad_request"),
        (
            "{\"verb\": \"submit\", \"job\": {\"trace\": {\"kind\": \"builtin\", \
             \"benchmark\": \"NOPE\", \"cores\": 4, \"accesses_per_core\": 10}, \
             \"schemes\": [\"RT-3\"]}}",
            404,
            "unknown_benchmark",
        ),
        (
            "{\"verb\": \"submit\", \"job\": {\"trace\": {\"kind\": \"stored\", \
             \"digest\": \"zz\"}, \"schemes\": [\"RT-3\"]}}",
            400,
            "bad_request",
        ),
        (
            "{\"verb\": \"submit\", \"job\": {\"trace\": {\"kind\": \"builtin\", \
             \"benchmark\": \"BARNES\", \"cores\": 4, \"accesses_per_core\": 10}, \
             \"schemes\": [\"NOT-A-SCHEME\"]}}",
            500,
            "replay",
        ),
        (
            "{\"verb\": \"upload\", \"bytes\": \"abc\"}",
            400,
            "bad_request",
        ),
    ];
    for (line, code, kind) in cases {
        let (got_code, got_kind) = error_of(&raw_round_trip(&stream, line));
        assert_eq!(
            (got_code, got_kind.as_str()),
            (code, kind),
            "wrong error for frame {line:?}"
        );
    }

    // A truncated frame (no newline, connection dropped mid-object) must
    // not wedge or kill the server either.
    {
        let mut truncated = TcpStream::connect(server.addr()).unwrap();
        truncated.write_all(b"{\"verb\": \"sta").unwrap();
        truncated.flush().unwrap();
        drop(truncated);
    }

    // The same connection still serves well-formed frames afterwards.
    let stats = raw_round_trip(&stream, "{\"verb\": \"stats\"}");
    assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert!(counter(&stats, "connections", "errors") >= cases.len() as u64);

    let mut client = connect(&server);
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn full_queue_rejects_submissions_with_backpressure() {
    let dir = TempDir::new("backpressure");
    let mut cfg = config(&dir);
    cfg.workers = 1;
    cfg.queue_limit = 1;
    let server = Server::spawn(cfg).unwrap();
    let mut client = connect(&server);
    let job = |schemes: &[&str]| JobSpec {
        trace: TraceSpec::Builtin {
            benchmark: "BARNES".into(),
            cores: 16,
            accesses_per_core: 2000,
            seed: 5,
        },
        schemes: schemes.iter().map(|s| s.to_string()).collect(),
        system: SystemPreset::SmallTest,
    };

    // Occupy the single worker, then wait until its cell left the queue.
    let blocker = job_id(&client.submit(&job(&["RT-3"])).unwrap());
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let status = client.status(&blocker).unwrap();
        let cell_state = status.get("cells").and_then(JsonValue::as_array).unwrap()[0]
            .get("state")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string();
        if cell_state != "queued" {
            break;
        }
        assert!(Instant::now() < deadline, "worker never claimed the cell");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Two new cells cannot fit a one-slot queue: typed 429, nothing queued.
    match client.submit(&job(&["S-NUCA", "R-NUCA"])) {
        Err(ClientError::Server { code, kind, .. }) => {
            assert_eq!((code, kind.as_str()), (429, "queue_full"));
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    // One cell fits, and completes once the worker frees up.
    let accepted = job_id(&client.submit(&job(&["VR"])).unwrap());
    let result = client.wait(&accepted, Duration::from_millis(10)).unwrap();
    assert_eq!(
        result
            .get("results")
            .and_then(JsonValue::as_array)
            .unwrap()
            .len(),
        1
    );
    client.wait(&blocker, Duration::from_millis(10)).unwrap();
    client.shutdown().unwrap();
    server.join();
}

#[test]
fn killed_server_resumes_from_checkpoint_not_access_zero() {
    let dir = TempDir::new("resume");
    let mut cfg = config(&dir);
    cfg.workers = 1;
    cfg.checkpoint_interval = 250;
    let spec = JobSpec {
        trace: TraceSpec::Builtin {
            benchmark: "BARNES".into(),
            cores: 16,
            accesses_per_core: 2500,
            seed: 7,
        },
        schemes: vec!["RT-3".into()],
        system: SystemPreset::SmallTest,
    };

    // Server A: run until the first checkpoint hits disk, then kill it
    // (dropping the handle drains like a SIGTERM: the running cell stops
    // at its next boundary and spills a final checkpoint).
    let server_a = Server::spawn(cfg.clone()).unwrap();
    let mut client = connect(&server_a);
    let job = job_id(&client.submit(&spec).unwrap());
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(&job).unwrap();
        let cell = &status.get("cells").and_then(JsonValue::as_array).unwrap()[0];
        let checkpointed = cell
            .get("checkpointed_accesses")
            .and_then(JsonValue::as_u64)
            .unwrap();
        if checkpointed >= 250 {
            assert_eq!(
                status.get("state").and_then(JsonValue::as_str),
                Some("running"),
                "the workload must still be mid-flight when the server dies"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint appeared within the deadline"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(client);
    drop(server_a);

    // The spilled checkpoint is on disk and covers real progress.
    let checkpoint_dir = cfg.data_dir.join("checkpoints");
    let spills: Vec<PathBuf> = std::fs::read_dir(&checkpoint_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    assert_eq!(spills.len(), 1, "exactly one cell checkpoint is spilled");
    // Checkpoints are digest-sealed envelopes: { digest, body: { key, checkpoint } }.
    let spill = JsonValue::parse(&std::fs::read_to_string(&spills[0]).unwrap()).unwrap();
    let body = spill.get("body").expect("checkpoint spill is sealed");
    let checkpoint = EngineCheckpoint::from_json(body.get("checkpoint").unwrap()).unwrap();
    assert!(
        checkpoint.total_accesses >= 250,
        "checkpoint must cover at least one interval, covers {}",
        checkpoint.total_accesses
    );
    assert_eq!(checkpoint.benchmark, "BARNES");

    // Server B over the same data dir: resubmitting the job resumes from
    // the checkpoint (the resumed-cells counter proves it) and produces a
    // report byte-identical to an uninterrupted run.
    let server_b = Server::spawn(cfg.clone()).unwrap();
    let mut client = connect(&server_b);
    let job = job_id(&client.submit(&spec).unwrap());
    let result = client.wait(&job, Duration::from_millis(10)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        counter(&stats, "cells", "resumed"),
        1,
        "the restarted server must resume the checkpoint, not start over"
    );
    assert_eq!(counter(&stats, "cells", "executed"), 1);

    let registry = SchemeRegistry::builtin();
    let entry = registry.get(SchemeId::Rt(3)).unwrap();
    let mut fresh = Simulator::with_policy_and_energy_model(
        SystemConfig::small_test().with_num_cores(16),
        entry.config.clone(),
        Arc::clone(&entry.policy),
        locality_replication::energy::model::EnergyModel::paper_default(),
    );
    let mut source = GeneratorSource::new(
        TraceGenerator::new(Benchmark::Barnes.profile()),
        16,
        2500,
        7,
    );
    let RunOutcome::Completed(fresh_report) = fresh.run_source_observed(&mut source, None).unwrap()
    else {
        panic!("uninterrupted run cannot be cancelled");
    };
    assert_eq!(
        cell_report(&result, "BARNES", "RT-3"),
        fresh_report.to_json().pretty(),
        "resumed report differs from an uninterrupted run"
    );

    // Completion removed the checkpoint spill.
    let leftovers = std::fs::read_dir(&checkpoint_dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .and_then(|x| x.to_str())
                == Some("json")
        })
        .count();
    assert_eq!(
        leftovers, 0,
        "a completed cell must clean up its checkpoint"
    );
    client.shutdown().unwrap();
    server_b.join();
}

/// The `metrics` verb end-to-end: after one real job the scrape carries a
/// parseable Prometheus exposition and a native JSON document whose
/// counters reflect the work done, per-verb latency histograms included.
#[test]
fn metrics_verb_exposes_prometheus_and_json() {
    let dir = TempDir::new("metrics");
    let server = Server::spawn(config(&dir)).unwrap();
    let mut client = connect(&server);
    let spec = JobSpec {
        trace: TraceSpec::Builtin {
            benchmark: "BARNES".into(),
            cores: 16,
            accesses_per_core: 120,
            seed: 11,
        },
        schemes: vec!["S-NUCA".into(), "RT-3".into()],
        system: SystemPreset::SmallTest,
    };
    let job = job_id(&client.submit(&spec).unwrap());
    client.wait(&job, Duration::from_millis(5)).unwrap();

    let frame = client.metrics().unwrap();
    assert_eq!(frame.get("ok").and_then(JsonValue::as_bool), Some(true));

    // The Prometheus body obeys the text-exposition grammar line by line:
    // comments are HELP/TYPE for the sample that follows, samples are
    // `name[{labels}] value` with a finite numeric value.
    let body = frame
        .get("prometheus")
        .and_then(JsonValue::as_str)
        .expect("metrics frame carries a prometheus body");
    let mut sample_lines = 0usize;
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unknown comment line: {line:?}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line:?}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad label block in line: {line:?}"
                );
            }
        }
        assert!(
            value.parse::<f64>().is_ok_and(f64::is_finite),
            "non-numeric sample value in line: {line:?}"
        );
        sample_lines += 1;
    }
    assert!(sample_lines > 20, "suspiciously small exposition: {body}");
    assert!(
        body.contains("# TYPE lad_serve_cells_executed_total counter"),
        "missing typed cells counter in exposition"
    );

    // The native JSON view round-trips through the strict parser and its
    // counters reflect the two executed cells and the frames exchanged.
    let json = frame
        .get("metrics")
        .expect("metrics frame carries a native JSON view");
    let reparsed = JsonValue::parse(&json.pretty()).unwrap();
    assert_eq!(&reparsed, json, "metrics JSON unstable under round-trip");
    let entries = json
        .get("metrics")
        .and_then(JsonValue::as_array)
        .expect("native view has a metrics array");
    let counter_value = |name: &str| {
        entries
            .iter()
            .find(|m| m.get("name").and_then(JsonValue::as_str) == Some(name))
            .and_then(|m| m.get("value"))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter_value("lad_serve_cells_executed_total"), 2);
    assert!(counter_value("lad_serve_jobs_submitted_total") >= 1);
    assert!(counter_value("lad_serve_frames_in_total") >= 3);
    let submit_latency = entries
        .iter()
        .find(|m| {
            m.get("name").and_then(JsonValue::as_str) == Some("lad_serve_verb_latency_us")
                && m.get("labels")
                    .and_then(|l| l.get("verb"))
                    .and_then(JsonValue::as_str)
                    == Some("submit")
        })
        .expect("per-verb latency histogram for submit");
    assert!(
        submit_latency
            .get("count")
            .and_then(JsonValue::as_u64)
            .is_some_and(|count| count >= 1),
        "submit latency histogram never recorded"
    );
    // Scrape-time gauges: the cache holds both spilled cells and the mode
    // gauge reports durable (0) over a healthy data directory.
    assert_eq!(counter_value("lad_serve_cache_entries"), 2);
    assert_eq!(counter_value("lad_serve_cache_mode"), 0);

    client.shutdown().unwrap();
    server.join();
}
