//! The `lad-check` invariant catalog, end to end.
//!
//! Three suites share the catalog in `crates/check`:
//!
//! 1. **Coverage** — every column of the paper comparison
//!    ([`SchemeComparison::SCHEME_ORDER`]) explores exhaustively clean on a
//!    small configuration, so a protocol regression in any scheme fails CI
//!    with a counterexample trace.
//! 2. **Mutation** — every seeded protocol mutant is caught by the
//!    invariant the seeding predicts, with a non-empty counterexample
//!    trace (the catalog has teeth).
//! 3. **Mirror** — the live timing engine and the abstract step relation,
//!    driven by the same random short access sequences, stay in agreement
//!    state-for-state through the shared [`ProtocolView`], and the
//!    engine's runtime hook reports zero violations at every step.  This
//!    pins the engine's runtime checking and the model's static
//!    exploration to the same transition semantics.

use locality_replication::prelude::*;
use proptest::prelude::*;

/// The exploration size for the coverage suite: 2 cores keeps even RT-8's
/// counter-heavy state space small enough to enumerate exhaustively in a
/// test, while the mutation suite (and `lad-check check --all` in CI) covers
/// 3-core ACKwise behavior.
fn coverage_config() -> ModelConfig {
    ModelConfig {
        cores: 2,
        lines: 1,
        ackwise_pointers: 2,
    }
}

/// Expands the `Asr` pseudo-column into the registered per-level ids.
fn registered_ids(scheme: SchemeId, registry: &SchemeRegistry) -> Vec<SchemeId> {
    match scheme {
        SchemeId::Asr => registry
            .ids()
            .filter(|id| matches!(id, SchemeId::AsrAt(_)))
            .collect(),
        other => vec![other],
    }
}

#[test]
fn every_scheme_order_column_explores_clean() {
    let registry = SchemeRegistry::builtin();
    for column in SchemeComparison::SCHEME_ORDER {
        for id in registered_ids(column, &registry) {
            let scheme = registry.get(id).expect("built-in scheme");
            let model = Model::new(scheme, coverage_config(), None);
            let exploration = explore(&model, ExploreOptions::default());
            assert!(
                !exploration.truncated,
                "{id}: exploration truncated at {} states",
                exploration.states
            );
            assert!(
                exploration.violations.is_empty(),
                "{id}: catalog violated:\n{}",
                exploration.violations[0].render()
            );
            assert!(exploration.states > 1, "{id}: exploration did not move");
        }
    }
}

#[test]
fn every_seeded_mutant_is_caught_with_a_counterexample_trace() {
    let registry = SchemeRegistry::builtin();
    for seeded in SEEDED_MUTANTS {
        let outcome = run_mutant(&registry, seeded, ModelConfig::default())
            .expect("mutant vehicles are built-in schemes");
        assert!(
            outcome.caught(),
            "mutant {} escaped the catalog:\n{}",
            seeded.mutant,
            outcome.verdict()
        );
        let found = outcome
            .exploration
            .violations
            .first()
            .expect("a caught mutant has a violation");
        assert!(
            !found.trace.is_empty(),
            "mutant {} was flagged without a counterexample trace",
            seeded.mutant
        );
    }
}

// ----- engine ↔ model mirror ------------------------------------------------

const MIRROR_CORES: usize = 4;
const MIRROR_LINES: u64 = 4;

/// Schemes whose engine path is deterministic and placement-stable (no ASR
/// coin flips, no R-NUCA page classification), so the abstract model can
/// mirror the engine exactly.
const MIRROR_SCHEMES: [SchemeId; 5] = [
    SchemeId::StaticNuca,
    SchemeId::VictimReplication,
    SchemeId::Rt(1),
    SchemeId::Rt(3),
    SchemeId::Rt(8),
];

/// One core's normalized protocol state for a line, extracted through the
/// shared [`ProtocolView`] so the engine and the model are read identically.
#[derive(Debug, PartialEq, Eq)]
struct CoreSnapshot {
    l1: Vec<MesiStateRepr>,
    replica: Option<(MesiStateRepr, u32, bool)>,
}

type MesiStateRepr = &'static str;

fn mesi_repr(state: lad_coherence::mesi::MesiState) -> MesiStateRepr {
    use lad_coherence::mesi::MesiState;
    match state {
        MesiState::Modified => "M",
        MesiState::Exclusive => "E",
        MesiState::Shared => "S",
        MesiState::Invalid => "I",
    }
}

fn core_snapshot(view: &dyn ProtocolView, core: CoreId, line: CacheLine) -> CoreSnapshot {
    let mut l1: Vec<MesiStateRepr> = view
        .l1_states(core, line)
        .into_iter()
        .filter(|s| s.is_valid())
        .map(mesi_repr)
        .collect();
    l1.sort_unstable();
    let replica = view
        .replica(core, line)
        .filter(|rep| rep.state.is_valid())
        .map(|rep| (mesi_repr(rep.state), rep.reuse.value(), rep.dirty));
    CoreSnapshot { l1, replica }
}

/// The home directory's normalized state for a line, order-insensitive.
#[derive(Debug, PartialEq, Eq)]
struct HomeSnapshot {
    slice: CoreId,
    exclusive: bool,
    owner: Option<CoreId>,
    sharer_count: usize,
    tracked: Vec<CoreId>,
    global: bool,
    classifier: Vec<(CoreId, String, u32, bool)>,
}

fn home_snapshot(view: &dyn ProtocolView, line: CacheLine) -> Option<HomeSnapshot> {
    let slice = view.home_slice(line, CoreId::new(0));
    let summary = view.home_at(line, slice)?;
    let mut tracked = summary.tracked.clone();
    tracked.sort_unstable_by_key(|c| c.index());
    let mut classifier: Vec<(CoreId, String, u32, bool)> = summary
        .classifier
        .iter()
        .map(|t| (t.core, format!("{:?}", t.mode), t.home_reuse, t.active))
        .collect();
    classifier.sort_unstable_by_key(|(core, ..)| core.index());
    Some(HomeSnapshot {
        slice,
        exclusive: summary.exclusive,
        owner: summary.owner,
        sharer_count: summary.sharer_count,
        tracked,
        global: summary.global,
        classifier,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every access of a random short sequence, the engine (stepped
    /// through its public API) and the abstract model (stepped through its
    /// declarative event relation) expose identical protocol state through
    /// the shared [`ProtocolView`], and the engine's runtime catalog check
    /// finds nothing.
    #[test]
    fn engine_and_model_agree_on_random_short_sequences(
        raw in prop::collection::vec(
            (0..MIRROR_CORES, 0..MIRROR_LINES, any::<bool>()),
            1..60,
        ),
        scheme_idx in 0usize..MIRROR_SCHEMES.len(),
    ) {
        let id = MIRROR_SCHEMES[scheme_idx];
        let registry = SchemeRegistry::builtin();
        let scheme = registry.get(id).expect("built-in scheme");

        let system = SystemConfig::small_test().with_num_cores(MIRROR_CORES);
        let ackwise_pointers = system.ackwise_pointers;
        let mut sim = Simulator::new(system, scheme.config.clone());
        sim.begin("MIRROR", MIRROR_CORES);

        let model = Model::new(
            scheme,
            ModelConfig {
                cores: MIRROR_CORES,
                lines: MIRROR_LINES as usize,
                ackwise_pointers,
            },
            None,
        );
        let mut state = model.initial();

        for (step, &(core, line, is_write)) in raw.iter().enumerate() {
            let core_id = CoreId::new(core);
            let cache_line = CacheLine::from_index(line);
            let address = Address::new(line * 64);
            let access = if is_write {
                MemoryAccess::write(core_id, address)
            } else {
                MemoryAccess::read(core_id, address)
            };
            sim.step(&access.with_class(DataClass::SharedReadWrite));
            let event = if is_write {
                Event::Write { core: core_id, line: cache_line }
            } else {
                Event::Read { core: core_id, line: cache_line }
            };
            model.apply(&mut state, event);

            let engine_view = sim.protocol_view();
            let model_view = model.view(&state);
            for l in 0..MIRROR_LINES {
                let cl = CacheLine::from_index(l);
                prop_assert_eq!(
                    home_snapshot(&engine_view, cl),
                    home_snapshot(&model_view, cl),
                    "{}: home state diverged for line {} after step {} ({:?})",
                    id, l, step, raw[..=step].to_vec()
                );
                for c in 0..MIRROR_CORES {
                    let cid = CoreId::new(c);
                    prop_assert_eq!(
                        core_snapshot(&engine_view, cid, cl),
                        core_snapshot(&model_view, cid, cl),
                        "{}: core {} diverged for line {} after step {} ({:?})",
                        id, c, l, step, raw[..=step].to_vec()
                    );
                }
            }

            let violations = sim.check_protocol_invariants();
            prop_assert!(
                violations.is_empty(),
                "{}: runtime catalog violated after step {}: {}",
                id, step, violations[0]
            );
        }
    }
}
