//! Record→replay determinism: serializing a workload to the LADT binary
//! format and streaming it back through `Simulator::run_source` must
//! produce a byte-identical `SimulationReport` to the in-memory
//! `Simulator::run`, for every benchmark of the quick suite under every
//! scheme of the paper's comparison.  This is the guarantee that makes
//! recorded traces a reproducibility artifact: a `.ladt` file replays to
//! the same numbers on any machine.

use std::io::Cursor;

use locality_replication::prelude::*;

/// One representative configuration per column of
/// [`SchemeComparison::SCHEME_ORDER`] (mirrors `tests/determinism.rs`).
fn config_for(scheme: SchemeId) -> ReplicationConfig {
    match scheme {
        SchemeId::StaticNuca => ReplicationConfig::static_nuca(),
        SchemeId::ReactiveNuca => ReplicationConfig::reactive_nuca(),
        SchemeId::VictimReplication => ReplicationConfig::victim_replication(),
        SchemeId::Asr => ReplicationConfig::asr(0.75),
        SchemeId::AsrAt(level) => ReplicationConfig::asr(f64::from(level) / 100.0),
        SchemeId::Rt(rt) => ReplicationConfig::locality_aware(rt),
        SchemeId::Custom(other) => panic!("no built-in configuration for {other:?}"),
    }
}

#[test]
fn recorded_traces_replay_byte_identically_for_every_scheme() {
    let system = SystemConfig::small_test();
    let suite = BenchmarkSuite::quick().with_accesses_per_core(400);

    for &benchmark in suite.benchmarks() {
        // Record: generate the benchmark's trace and serialize it to LADT
        // bytes (exactly what `lad-trace record` writes to disk).
        let trace = suite.trace_for(benchmark, system.num_cores);
        let bytes =
            locality_replication::traceio::encode_workload(&trace, suite.seed() ^ benchmark as u64)
                .expect("in-memory recording cannot fail");

        for scheme in SchemeComparison::SCHEME_ORDER {
            let mut sim = Simulator::new(system.clone(), config_for(scheme));
            let in_memory = sim.run(&trace);

            // Replay: stream the recorded bytes back through run_source.
            let mut source =
                ReaderSource::new(Cursor::new(bytes.clone())).expect("recorded bytes must open");
            let replayed = sim
                .run_source(&mut source)
                .expect("recorded bytes must replay");

            assert_eq!(
                format!("{in_memory:?}"),
                format!("{replayed:?}"),
                "{} replay of {} diverged from the in-memory run",
                scheme,
                benchmark.label()
            );
        }
    }
}

#[test]
fn replay_reports_carry_the_recorded_benchmark_name() {
    let system = SystemConfig::small_test();
    let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(system.num_cores, 200, 9);
    let bytes = locality_replication::traceio::encode_workload(&trace, 9).unwrap();
    let mut source = ReaderSource::new(Cursor::new(bytes)).unwrap();
    let mut sim = Simulator::new(system, ReplicationConfig::locality_aware(3));
    let report = sim.run_source(&mut source).unwrap();
    assert_eq!(report.benchmark, "BARNES");
    assert_eq!(report.scheme, "RT-3");
    assert!(report.total_accesses > 0);
}
