//! Property-based integration tests: the protocol invariants must hold for
//! arbitrary (small) workloads, schemes and thresholds — not just the
//! hand-written benchmark profiles.

use lad_common::config::SystemConfig;
use lad_common::types::{CoreId, MemoryAccess};
use lad_replication::classifier::ClassifierKind;
use lad_replication::config::ReplicationConfig;
use lad_sim::engine::Simulator;
use lad_trace::generator::WorkloadTrace;
use proptest::prelude::*;

/// A compact encoding of a random access: (core, line, is_write).
fn access_strategy(num_cores: usize, lines: u64) -> impl Strategy<Value = (usize, u64, bool)> {
    (0..num_cores, 0..lines, any::<bool>())
}

fn build_trace(num_cores: usize, raw: &[(usize, u64, bool)]) -> WorkloadTrace {
    let mut per_core = vec![Vec::new(); num_cores];
    for (core, line, is_write) in raw {
        let core_id = CoreId::new(*core);
        let address = lad_common::types::Address::new(line * 64);
        let access = if *is_write {
            MemoryAccess::write(core_id, address)
        } else {
            MemoryAccess::read(core_id, address)
        };
        per_core[*core].push(access.with_class(lad_common::types::DataClass::SharedReadWrite));
    }
    WorkloadTrace::new("PROPTEST", per_core)
}

fn all_configs() -> Vec<ReplicationConfig> {
    vec![
        ReplicationConfig::static_nuca(),
        ReplicationConfig::reactive_nuca(),
        ReplicationConfig::victim_replication(),
        ReplicationConfig::asr(0.75),
        ReplicationConfig::locality_aware(1),
        ReplicationConfig::locality_aware(3).with_classifier(ClassifierKind::Limited(1)),
        ReplicationConfig::locality_aware(3).with_classifier(ClassifierKind::Complete),
        ReplicationConfig::locality_aware(8).with_cluster_size(4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the interleaving of reads and writes, the simulator must
    /// account for every access, keep time monotonic and never lose energy.
    #[test]
    fn accesses_are_conserved_for_arbitrary_workloads(
        raw in prop::collection::vec(access_strategy(8, 96), 1..400),
        config_idx in 0usize..8,
    ) {
        let system = SystemConfig::small_test().with_num_cores(8);
        let trace = build_trace(8, &raw);
        let config = all_configs()[config_idx].clone();
        let mut sim = Simulator::new(system, config);
        let report = sim.run(&trace);
        prop_assert_eq!(report.total_accesses, raw.len() as u64);
        prop_assert_eq!(
            report.total_accesses,
            report.misses.l1_hits + report.misses.l1_misses()
        );
        prop_assert!(report.completion_time.value() > 0);
        prop_assert!(report.energy.total() >= 0.0);
        prop_assert!(report.energy.total().is_finite());
    }

    /// Replication never changes *what* is computed, only where lines are
    /// cached: a scheme must serve exactly the same number of accesses as the
    /// non-replicating baseline on the same trace.
    #[test]
    fn schemes_agree_on_access_counts(
        raw in prop::collection::vec(access_strategy(4, 64), 1..250),
    ) {
        let system = SystemConfig::small_test().with_num_cores(4);
        let trace = build_trace(4, &raw);
        let mut counts = Vec::new();
        for config in [
            ReplicationConfig::static_nuca(),
            ReplicationConfig::locality_aware(3),
            ReplicationConfig::victim_replication(),
        ] {
            let mut sim = Simulator::new(system.clone(), config);
            let report = sim.run(&trace);
            counts.push(report.total_accesses);
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    /// Schemes that never replicate must never report replica hits, for any
    /// workload.
    #[test]
    fn baselines_without_replication_have_no_replica_hits(
        raw in prop::collection::vec(access_strategy(8, 128), 1..300),
    ) {
        let system = SystemConfig::small_test().with_num_cores(8);
        let trace = build_trace(8, &raw);
        for config in [ReplicationConfig::static_nuca(), ReplicationConfig::reactive_nuca()] {
            let mut sim = Simulator::new(system.clone(), config);
            let report = sim.run(&trace);
            prop_assert_eq!(report.replicas_created, 0);
            prop_assert_eq!(report.misses.llc_replica_hits, 0);
        }
    }
}
