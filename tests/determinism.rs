//! Determinism regression: the simulator must be bit-for-bit reproducible
//! from a seed for *every* scheme of the paper's comparison, not just RT-3.
//!
//! Two independent simulator instances fed the identically-seeded trace must
//! produce byte-identical [`SimulationReport`]s (compared on the full `Debug`
//! rendering, which covers every counter, histogram and energy total) — and
//! the resumable stepping API (`begin` / `profile_access` / `step` /
//! `report`) must be byte-identical to `run`, for every scheme.

use locality_replication::prelude::*;
use proptest::prelude::*;

/// One representative configuration per column of
/// [`SchemeComparison::SCHEME_ORDER`].
fn config_for(scheme: SchemeId) -> ReplicationConfig {
    match scheme {
        SchemeId::StaticNuca => ReplicationConfig::static_nuca(),
        SchemeId::ReactiveNuca => ReplicationConfig::reactive_nuca(),
        SchemeId::VictimReplication => ReplicationConfig::victim_replication(),
        SchemeId::Asr => ReplicationConfig::asr(0.75),
        SchemeId::AsrAt(level) => ReplicationConfig::asr(f64::from(level) / 100.0),
        SchemeId::Rt(rt) => ReplicationConfig::locality_aware(rt),
        SchemeId::Custom(other) => panic!("no built-in configuration for {other:?}"),
    }
}

fn trace_for_seed(seed: u64) -> lad_trace::generator::WorkloadTrace {
    let system = SystemConfig::small_test();
    TraceGenerator::new(Benchmark::Radix.profile()).generate(system.num_cores, 300, seed)
}

fn report(scheme: SchemeId, seed: u64) -> String {
    let mut sim = Simulator::new(SystemConfig::small_test(), config_for(scheme));
    format!("{:?}", sim.run(&trace_for_seed(seed)))
}

#[test]
fn same_seed_gives_byte_identical_reports_for_every_scheme() {
    for scheme in SchemeComparison::SCHEME_ORDER {
        let first = report(scheme, 1234);
        let second = report(scheme, 1234);
        assert_eq!(
            first, second,
            "{scheme} is not deterministic under a fixed seed"
        );
    }
}

#[test]
fn different_seeds_change_the_workload() {
    // Guards against the trace generator silently ignoring its seed, which
    // would make the test above pass vacuously.
    let first = report(SchemeId::StaticNuca, 1);
    let second = report(SchemeId::StaticNuca, 2);
    assert_ne!(first, second, "seed has no effect on the S-NUCA report");
}

#[test]
fn identically_seeded_traces_are_equal() {
    let a = trace_for_seed(77);
    let b = trace_for_seed(77);
    assert_eq!(a, b);
}

/// Drives a trace through the public stepping API the way `run` does:
/// profiling pass, then always advance the core whose clock is furthest
/// behind, then snapshot.
fn step_driven_report(scheme: SchemeId, seed: u64) -> String {
    let system = SystemConfig::small_test();
    let trace = trace_for_seed(seed);
    let mut sim = Simulator::new(system, config_for(scheme));

    sim.begin(trace.name(), trace.num_cores());
    for access in trace.iter() {
        sim.profile_access(access);
    }
    let mut cursors = vec![0usize; trace.num_cores()];
    let mut outcomes = 0usize;
    loop {
        let next = (0..trace.num_cores())
            .filter(|&c| cursors[c] < trace.core_stream(CoreId::new(c)).len())
            .min_by_key(|&c| sim.core_clock(CoreId::new(c)));
        let Some(core) = next else { break };
        let access = trace.core_stream(CoreId::new(core))[cursors[core]];
        cursors[core] += 1;
        let outcome = sim.step(&access);
        assert_eq!(outcome.core, access.core);
        assert_eq!(outcome.finish, sim.core_clock(access.core));
        outcomes += 1;
    }
    assert_eq!(outcomes, trace.total_accesses());
    format!("{:?}", sim.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property: for every scheme of the paper's comparison, executing a
    /// trace through the public stepping API produces a byte-identical
    /// report to `Simulator::run`.
    #[test]
    fn step_driven_execution_matches_run(seed in 1u64..10_000) {
        for scheme in SchemeComparison::SCHEME_ORDER {
            let via_run = report(scheme, seed);
            let via_step = step_driven_report(scheme, seed);
            prop_assert_eq!(
                via_run,
                via_step,
                "{} diverges between run and step at seed {}",
                scheme,
                seed
            );
        }
    }
}

#[test]
fn report_is_a_checkpoint_not_a_terminal_operation() {
    // Snapshotting mid-stream must not perturb the final report.
    let scheme = SchemeId::Rt(3);
    let trace = trace_for_seed(42);
    let system = SystemConfig::small_test();

    let mut checkpointed = Simulator::new(system.clone(), config_for(scheme));
    checkpointed.begin(trace.name(), trace.num_cores());
    for access in trace.iter() {
        checkpointed.profile_access(access);
    }
    let mut mid_completion = Cycle::ZERO;
    for (i, access) in trace.iter().enumerate() {
        checkpointed.step(access);
        if i == trace.total_accesses() / 2 {
            // Checkpoint halfway through; the snapshot is self-consistent...
            let snapshot = checkpointed.report();
            assert_eq!(snapshot.total_accesses as usize, i + 1);
            mid_completion = snapshot.completion_time;
        }
    }
    let final_report = checkpointed.report();
    // ...covers a prefix of the stream...
    assert!(mid_completion <= final_report.completion_time);

    // ...and did not change the outcome relative to an uncheckpointed run
    // over the same (sequential) access order.
    let mut plain = Simulator::new(system, config_for(scheme));
    plain.begin(trace.name(), trace.num_cores());
    for access in trace.iter() {
        plain.profile_access(access);
    }
    for access in trace.iter() {
        plain.step(access);
    }
    assert_eq!(format!("{:?}", plain.report()), format!("{final_report:?}"));
}
