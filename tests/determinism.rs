//! Determinism regression: the simulator must be bit-for-bit reproducible
//! from a seed for *every* scheme of the paper's comparison, not just RT-3.
//!
//! Two independent simulator instances fed the identically-seeded trace must
//! produce byte-identical [`SimulationReport`]s (compared on the full `Debug`
//! rendering, which covers every counter, histogram and energy total).

use locality_replication::prelude::*;

/// One representative configuration per label in
/// [`SchemeComparison::SCHEME_ORDER`].
fn config_for(scheme: &str) -> ReplicationConfig {
    match scheme {
        "S-NUCA" => ReplicationConfig::static_nuca(),
        "R-NUCA" => ReplicationConfig::reactive_nuca(),
        "VR" => ReplicationConfig::victim_replication(),
        "ASR" => ReplicationConfig::asr(0.75),
        "RT-1" => ReplicationConfig::locality_aware(1),
        "RT-3" => ReplicationConfig::locality_aware(3),
        "RT-8" => ReplicationConfig::locality_aware(8),
        other => panic!("unknown scheme label {other:?}"),
    }
}

fn report(scheme: &str, seed: u64) -> String {
    let system = SystemConfig::small_test();
    let trace = TraceGenerator::new(Benchmark::Radix.profile()).generate(
        system.num_cores,
        300,
        seed,
    );
    let mut sim = Simulator::new(system, config_for(scheme));
    format!("{:?}", sim.run(&trace))
}

#[test]
fn same_seed_gives_byte_identical_reports_for_every_scheme() {
    for scheme in SchemeComparison::SCHEME_ORDER {
        let first = report(scheme, 1234);
        let second = report(scheme, 1234);
        assert_eq!(first, second, "{scheme} is not deterministic under a fixed seed");
    }
}

#[test]
fn different_seeds_change_the_workload() {
    // Guards against the trace generator silently ignoring its seed, which
    // would make the test above pass vacuously.
    let first = report("S-NUCA", 1);
    let second = report("S-NUCA", 2);
    assert_ne!(first, second, "seed has no effect on the S-NUCA report");
}

#[test]
fn identically_seeded_traces_are_equal() {
    let system = SystemConfig::small_test();
    let a = TraceGenerator::new(Benchmark::Radix.profile()).generate(system.num_cores, 300, 77);
    let b = TraceGenerator::new(Benchmark::Radix.profile()).generate(system.num_cores, 300, 77);
    assert_eq!(a, b);
}
