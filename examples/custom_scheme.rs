//! Plugging a custom replication scheme into the experiment harness.
//!
//! The timing engine never hard-codes a scheme: it drives every replication
//! decision through the `ReplicationPolicy` trait.  This example defines a
//! deliberately naive out-of-crate policy — replicate *every* line at the
//! requester's LLC slice on every home fill, no classifier, no threshold —
//! registers it in the runner's `SchemeRegistry` under a typed
//! `SchemeId::Custom` id, and sweeps it through `ExperimentRunner::run_matrix`
//! against S-NUCA and the paper's RT-3, exactly like a built-in scheme.
//!
//! The result illustrates the paper's core point from the opposite
//! direction: indiscriminate replication wins replica hits but pollutes the
//! LLC, so low-reuse workloads pay for it with off-chip misses, while the
//! locality-aware protocol keeps the hits without the pollution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_scheme
//! ```

use std::sync::Arc;

use locality_replication::prelude::*;

/// Replicate-on-every-fill: the maximally aggressive end of the replication
/// spectrum.
#[derive(Debug)]
struct AlwaysReplicate;

impl ReplicationPolicy for AlwaysReplicate {
    fn id(&self) -> SchemeId {
        SchemeId::Custom("ALWAYS")
    }

    fn placement(&self) -> PlacementPolicy {
        // Run on plain address interleaving, like VR and ASR.
        PlacementPolicy::AddressInterleaved
    }

    fn replicates(&self) -> bool {
        true
    }

    fn replicate_on_fill(&self, _decision: FillDecision<'_>) -> bool {
        // No classifier, no reuse tracking: every home fill spawns a replica.
        true
    }

    fn replicate_on_l1_evict(&self, _decision: EvictDecision<'_>) -> bool {
        false
    }
}

fn main() {
    let system = SystemConfig::paper_default();
    let suite = BenchmarkSuite::custom(
        vec![
            Benchmark::Barnes,
            Benchmark::Fluidanimate,
            Benchmark::Streamcluster,
        ],
        2000,
        13,
    );

    let mut runner = ExperimentRunner::new(system, suite);
    runner.register_scheme(Arc::new(AlwaysReplicate), ReplicationConfig::static_nuca());

    let schemes = [
        SchemeId::StaticNuca,
        SchemeId::Custom("ALWAYS"),
        SchemeId::Rt(3),
    ];
    let results = runner
        .run_matrix(&schemes)
        .expect("every scheme is registered");

    println!(
        "{:<14} {:<8} {:>14} {:>12} {:>14} {:>14}",
        "benchmark", "scheme", "replicas", "replica hits", "off-chip", "norm. energy"
    );
    for benchmark in runner.suite().benchmarks().to_vec() {
        let baseline = &results[&(benchmark, SchemeId::StaticNuca)];
        for scheme in schemes {
            let report = &results[&(benchmark, scheme)];
            println!(
                "{:<14} {:<8} {:>14} {:>12} {:>14} {:>14.3}",
                benchmark.label(),
                report.scheme,
                report.replicas_created,
                report.misses.llc_replica_hits,
                report.misses.offchip_misses,
                report.energy.total() / baseline.energy.total(),
            );
        }
        println!();
    }
    println!("ALWAYS replicates blindly; RT-3 replicates only lines whose observed");
    println!("reuse clears the threshold — compare the off-chip column on the");
    println!("low-reuse benchmarks.");
}
