//! Tuning the locality classifier: sweep the replication threshold (RT) and
//! the number of tracked cores of the Limited_k classifier on a benchmark
//! with many sharers (STREAMCLUSTER), the case Section 4.3 of the paper
//! highlights.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example classifier_tuning
//! ```

use locality_replication::prelude::*;

fn main() {
    let system = SystemConfig::paper_default();
    let benchmark = Benchmark::Streamcluster;
    let trace = TraceGenerator::new(benchmark.profile()).generate(system.num_cores, 2500, 3);

    println!(
        "replication-threshold sweep on {} (Limited_3 classifier)",
        benchmark.label()
    );
    println!(
        "{:<8} {:>16} {:>16} {:>14}",
        "RT", "energy (pJ)", "time (cycles)", "replica hits"
    );
    for rt in [1, 2, 3, 4, 6, 8] {
        let mut sim = Simulator::new(system.clone(), ReplicationConfig::locality_aware(rt));
        let report = sim.run(&trace);
        println!(
            "{:<8} {:>16.0} {:>16} {:>14}",
            rt,
            report.energy.total(),
            report.completion_time.value(),
            report.misses.llc_replica_hits
        );
    }

    println!();
    println!("classifier-capacity sweep (RT = 3), normalized to the Complete classifier");
    let complete = {
        let config = ReplicationConfig::locality_aware(3).with_classifier(ClassifierKind::Complete);
        let mut sim = Simulator::new(system.clone(), config);
        sim.run(&trace)
    };
    println!(
        "{:<12} {:>14} {:>16}",
        "classifier", "norm. energy", "norm. time"
    );
    for k in [1usize, 3, 5, 7] {
        let config =
            ReplicationConfig::locality_aware(3).with_classifier(ClassifierKind::Limited(k));
        let mut sim = Simulator::new(system.clone(), config);
        let report = sim.run(&trace);
        println!(
            "{:<12} {:>14.3} {:>16.3}",
            format!("Limited_{k}"),
            report.energy.total() / complete.energy.total(),
            report.completion_time.value() as f64 / complete.completion_time.value() as f64,
        );
    }
    println!("{:<12} {:>14.3} {:>16.3}", "Complete", 1.0, 1.0);
}
