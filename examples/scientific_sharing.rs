//! Scientific shared-data workloads (the BARNES / WATER-NSQ / LU-NC family):
//! shared read-write data with long reuse runs, including migratory sharing.
//!
//! The paper's motivation (Section 1.1) is that such data benefits from LLC
//! replication even though it is read-*write*, which the R-NUCA and ASR
//! baselines never replicate.  This example reproduces that comparison for
//! the three shared-data benchmarks and prints the energy and completion
//! time of every scheme normalized to Static-NUCA.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scientific_sharing
//! ```

use locality_replication::prelude::*;

fn main() {
    let system = SystemConfig::paper_default();
    let suite = BenchmarkSuite::custom(
        vec![
            Benchmark::Barnes,
            Benchmark::WaterNsquared,
            Benchmark::LuNonContiguous,
        ],
        2500,
        7,
    );
    let runner = ExperimentRunner::new(system, suite);

    let configs = [
        ReplicationConfig::static_nuca(),
        ReplicationConfig::reactive_nuca(),
        ReplicationConfig::victim_replication(),
        ReplicationConfig::asr(1.0),
        ReplicationConfig::locality_aware(3),
    ];

    println!(
        "{:<12} {:<10} {:>16} {:>16} {:>14}",
        "benchmark", "scheme", "norm. energy", "norm. time", "replica hits"
    );
    for benchmark in runner.suite().benchmarks().to_vec() {
        let baseline = runner.run_one(benchmark, &configs[0]);
        for config in &configs {
            let report = runner.run_one(benchmark, config);
            println!(
                "{:<12} {:<10} {:>16.3} {:>16.3} {:>14}",
                benchmark.label(),
                report.scheme,
                report.energy.total() / baseline.energy.total(),
                report.completion_time.value() as f64 / baseline.completion_time.value() as f64,
                report.misses.llc_replica_hits,
            );
        }
        println!();
    }
    println!("Shared read-write data with high reuse is only replicated by the");
    println!("locality-aware protocol (RT-3); R-NUCA and ASR leave it at the home slice.");
}
