//! Full scheme shoot-out on a representative benchmark subset: the same
//! seven configurations as Figures 6 and 7 (S-NUCA, R-NUCA, VR, ASR at its
//! best level, RT-1, RT-3, RT-8), with energy and completion time normalized
//! to S-NUCA and averaged across benchmarks.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheme_shootout
//! ```

use locality_replication::prelude::*;

fn main() {
    let system = SystemConfig::paper_default();
    let suite = BenchmarkSuite::quick().with_accesses_per_core(2000);
    let runner = ExperimentRunner::new(system, suite);
    let comparison = runner.run_paper_comparison();

    let baseline = SchemeId::StaticNuca;
    println!(
        "normalized to S-NUCA, averaged over {:?}",
        comparison
            .benchmarks()
            .iter()
            .map(|b| b.label())
            .collect::<Vec<_>>()
    );
    println!("{:<8} {:>14} {:>18}", "scheme", "energy", "completion time");
    for scheme in SchemeComparison::SCHEME_ORDER {
        println!(
            "{:<8} {:>14.3} {:>18.3}",
            scheme.label(),
            comparison
                .average_normalized_energy(scheme, baseline)
                .expect("scheme was run"),
            comparison
                .average_normalized_completion_time(scheme, baseline)
                .expect("scheme was run"),
        );
    }

    let (energy_red, time_red) = comparison
        .reduction_vs(SchemeId::Rt(3), baseline)
        .expect("RT-3 and S-NUCA were run");
    println!();
    println!("RT-3 vs S-NUCA: {energy_red:.1}% lower energy, {time_red:.1}% lower completion time");
}
