//! Quick start: simulate one benchmark under the locality-aware protocol and
//! the Static-NUCA baseline, and print the paper's three headline metrics
//! (completion time, energy, and where L1 misses were served).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use locality_replication::prelude::*;

fn main() {
    // The paper's 64-core target (Table 1).  Scale the trace length down if
    // you are exploring interactively.
    let system = SystemConfig::paper_default();
    let accesses_per_core = 2000;

    let trace = TraceGenerator::new(Benchmark::Barnes.profile()).generate(
        system.num_cores,
        accesses_per_core,
        42,
    );
    println!(
        "benchmark {} ({}): {} cores x {} accesses",
        trace.name(),
        Benchmark::Barnes.profile().problem_size,
        trace.num_cores(),
        accesses_per_core
    );

    for config in [
        ReplicationConfig::static_nuca(),
        ReplicationConfig::locality_aware(3),
    ] {
        let mut simulator = Simulator::new(system.clone(), config);
        let report = simulator.run(&trace);
        println!();
        println!("--- {} ---", report.scheme);
        println!("completion time : {}", report.completion_time);
        println!("total energy    : {:.1} pJ", report.energy.total());
        println!(
            "L1 misses       : {} replica hits / {} home hits / {} off-chip",
            report.misses.llc_replica_hits,
            report.misses.llc_home_hits,
            report.misses.offchip_misses
        );
        println!("replicas created: {}", report.replicas_created);
    }
}
