//! Record a benchmark to the LADT binary trace format and replay it through
//! the streaming `TraceSource` path, demonstrating that a `.ladt` file is a
//! byte-exact reproducibility artifact: the replayed report is identical to
//! the in-memory run.
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use std::io::Cursor;

use locality_replication::prelude::*;
use locality_replication::traceio::encode_workload;

fn main() {
    let system = SystemConfig::small_test();
    let suite = BenchmarkSuite::quick().with_accesses_per_core(600);
    let benchmark = Benchmark::Barnes;

    // "record": generate the synthetic workload and serialize it.
    let trace = suite.trace_for(benchmark, system.num_cores);
    let bytes = encode_workload(&trace, suite.seed() ^ benchmark as u64)
        .expect("recording to memory cannot fail");
    let in_memory_bytes = trace.total_accesses() * std::mem::size_of::<MemoryAccess>();
    println!(
        "recorded {}: {} accesses, {} LADT bytes ({:.2} bytes/access, {:.1}x smaller than RAM)",
        trace.name(),
        trace.total_accesses(),
        bytes.len(),
        bytes.len() as f64 / trace.total_accesses() as f64,
        in_memory_bytes as f64 / bytes.len() as f64,
    );

    // "replay": stream the recorded bytes through the simulator and compare
    // with the in-memory run, scheme by scheme.
    println!(
        "\n{:<8} {:>14} {:>14}  identical",
        "scheme", "completion", "replica hits"
    );
    for scheme in [SchemeId::StaticNuca, SchemeId::Rt(3)] {
        let config = match scheme {
            SchemeId::Rt(rt) => ReplicationConfig::locality_aware(rt),
            _ => ReplicationConfig::static_nuca(),
        };
        let mut sim = Simulator::new(system.clone(), config);
        let direct = sim.run(&trace);

        let mut source =
            ReaderSource::new(Cursor::new(bytes.clone())).expect("recorded bytes must open");
        let replayed = sim
            .run_source(&mut source)
            .expect("recorded bytes must replay");

        let identical = format!("{direct:?}") == format!("{replayed:?}");
        println!(
            "{:<8} {:>14} {:>14}  {}",
            replayed.scheme,
            replayed.completion_time.to_string(),
            replayed.misses.llc_replica_hits,
            if identical { "yes" } else { "NO" },
        );
        assert!(identical, "replay diverged from the in-memory run");
    }
    println!("\nevery replayed report is byte-identical to its in-memory run");
}
