//! Instruction-footprint-heavy workloads (the FACESIM / BODYTRACK / RAYTRACE
//! family), the case Reactive-NUCA's cluster-level instruction replication
//! was designed for.
//!
//! The locality-aware protocol replicates instructions *at the requesting
//! core* (not one slice per 4-core cluster), so the serialization delay of
//! fetching the line across the cluster disappears once the classifier has
//! seen enough reuse.  This example compares the three instruction-heavy
//! benchmarks under R-NUCA, ASR and the locality-aware protocol.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example instruction_server
//! ```

use locality_replication::prelude::*;

fn main() {
    let system = SystemConfig::paper_default();
    let suite = BenchmarkSuite::custom(
        vec![
            Benchmark::Facesim,
            Benchmark::Bodytrack,
            Benchmark::Raytrace,
        ],
        2500,
        11,
    );
    let runner = ExperimentRunner::new(system, suite);

    let configs = [
        ReplicationConfig::static_nuca(),
        ReplicationConfig::reactive_nuca(),
        ReplicationConfig::asr(1.0),
        ReplicationConfig::locality_aware(3),
    ];

    println!(
        "{:<12} {:<10} {:>12} {:>14} {:>18}",
        "benchmark", "scheme", "norm. time", "norm. energy", "replica hit frac"
    );
    for benchmark in runner.suite().benchmarks().to_vec() {
        let baseline = runner.run_one(benchmark, &configs[0]);
        for config in &configs {
            let report = runner.run_one(benchmark, config);
            println!(
                "{:<12} {:<10} {:>12.3} {:>14.3} {:>18.3}",
                benchmark.label(),
                report.scheme,
                report.completion_time.value() as f64 / baseline.completion_time.value() as f64,
                report.energy.total() / baseline.energy.total(),
                report.misses.replica_hit_fraction(),
            );
        }
        println!();
    }
}
